"""Bench smoke for CI: time the engine on a Table-I subset.

Writes ``BENCH_synth.json`` with per-benchmark wall time, gate count, and
the store cache-hit rates for both a cold run and a warm re-run against the
same shared store — the number CI tracks to catch regressions in the
shared-result-store reuse.

Run as a module::

    python -m benchmarks.synth_bench [-o BENCH_synth.json] [--jobs N]

(or ``python benchmarks/synth_bench.py`` with ``src`` on ``PYTHONPATH``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: Small, fast Table-I subset — CI smoke, not the full suite.
DEFAULT_BENCHMARKS = ("cm152a", "cm85a", "cmb", "comp")


def run_bench(
    names: tuple[str, ...] = DEFAULT_BENCHMARKS,
    psi: int = 3,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict:
    from repro.benchgen.extended import build_extended_benchmark
    from repro.core.area import network_stats
    from repro.core.synthesis import SynthesisOptions, synthesize_with_report
    from repro.core.verify import verify_threshold_network
    from repro.engine.store import ResultStore
    from repro.network.scripts import prepare_tels

    from repro.core.identify import CheckStats

    store = ResultStore()
    options = SynthesisOptions(psi=psi, seed=seed)
    rows = []
    totals = CheckStats()
    degraded_cones = 0
    for name in names:
        source = build_extended_benchmark(name)
        prepared = prepare_tels(source)
        before = store.stats.snapshot()
        start = time.perf_counter()
        network, report = synthesize_with_report(
            prepared, options, jobs=jobs, store=store
        )
        wall = time.perf_counter() - start
        if not verify_threshold_network(source, network, vectors=256):
            raise SystemExit(f"bench verification failed on {name!r}")
        stats = network_stats(network)
        check = report.checker.stats
        spent = store.stats.since(before)
        rows.append(
            {
                "benchmark": name,
                "gates": stats.gates,
                "levels": stats.levels,
                "area": stats.area,
                "wall_s": round(wall, 4),
                "checker_calls": check.calls,
                "checker_cache_hit_rate": round(check.cache_hit_rate, 4),
                "store_analysis_hit_rate": round(
                    spent.analysis_hit_rate, 4
                ),
                "ilp_solves": check.ilp_solved,
                "fastpath_hit_rate": round(check.fastpath_hit_rate, 4),
                "exact_solve_wall_s": round(check.exact_wall_s, 4),
                "scipy_solve_wall_s": round(check.scipy_wall_s, 4),
            }
        )
        totals.add(check)
        degraded_cones += report.degraded_cones

    # Warm re-run over the same store: near-total reuse is the invariant.
    # Preparation stays outside the clock so warm_wall_s is comparable to
    # the per-benchmark wall_s (which also times synthesis only).
    warm_nets = [prepare_tels(build_extended_benchmark(n)) for n in names]
    warm_before = store.stats.snapshot()
    start = time.perf_counter()
    for prepared in warm_nets:
        synthesize_with_report(prepared, options, jobs=jobs, store=store)
    warm_wall = time.perf_counter() - start
    warm = store.stats.since(warm_before)

    # Persistent-cache phases (when a cache directory is given): each phase
    # starts from a *fresh* in-memory store so every first-touch lookup has
    # to go through the on-disk tier.  The cold phase populates (or, on a
    # repeated bench invocation in the same workdir, reuses) the cache; the
    # warm phase must then answer every lookup from disk.
    persistent: dict = {}
    if cache_dir is not None:

        def _persistent_phase() -> tuple[float, "ResultStore"]:
            pstore = ResultStore.with_cache_dir(cache_dir)
            start = time.perf_counter()
            for prepared in warm_nets:
                synthesize_with_report(
                    prepared, options, jobs=jobs, store=pstore
                )
            return time.perf_counter() - start, pstore

        cold_wall_p, cold_store = _persistent_phase()
        warm_wall_p, warm_store = _persistent_phase()
        persistent = {
            "cache_dir": str(cache_dir),
            "persistent_cold_wall_s": round(cold_wall_p, 4),
            "persistent_warm_wall_s": round(warm_wall_p, 4),
            "persistent_cold_hits": cold_store.stats.persistent_hits,
            "persistent_cold_hit_rate": round(
                cold_store.stats.persistent_hit_rate, 4
            ),
            "persistent_warm_hits": warm_store.stats.persistent_hits,
            "persistent_warm_hit_rate": round(
                warm_store.stats.persistent_hit_rate, 4
            ),
            "persistent_transformed_hits": warm_store.stats.transformed_hits,
            "persistent_entries": len(warm_store.persistent),
        }

    # Lint smoke phase: the full rule set re-linted over every synthesized
    # network.  Every violation here is a synthesis bug, so the tracked
    # invariant is a flat zero; the wall time watches for rule-cost creep.
    from repro.lint.diagnostics import LintOptions
    from repro.lint.runner import run_lint

    lint_violations = 0
    start = time.perf_counter()
    for name in names:
        source = build_extended_benchmark(name)
        network, _ = synthesize_with_report(
            prepare_tels(source), options, jobs=jobs, store=store
        )
        lint_report = run_lint(network, LintOptions(psi=psi), source=source)
        lint_violations += lint_report.violations
    lint_wall = time.perf_counter() - start

    return {
        "psi": psi,
        "seed": seed,
        "jobs": jobs,
        **persistent,
        "lint_wall_s": round(lint_wall, 4),
        "lint_violations": lint_violations,
        "degraded_cones": degraded_cones,
        "benchmarks": rows,
        "cold_wall_s": round(sum(r["wall_s"] for r in rows), 4),
        "warm_wall_s": round(warm_wall, 4),
        "warm_vector_hit_rate": round(warm.vector_hit_rate, 4),
        "warm_analysis_hit_rate": round(warm.analysis_hit_rate, 4),
        "store_entries": len(store),
        "ilp_solves_total": totals.ilp_solved,
        "fastpath_hit_rate": round(totals.fastpath_hit_rate, 4),
        "fastpath_hits": totals.fastpath_hits,
        "fastpath_negatives": totals.fastpath_negatives,
        "fastpath_misses": totals.fastpath_misses,
        "exact_solves": totals.exact_solves,
        "scipy_solves": totals.scipy_solves,
        "exact_solve_wall_s": round(totals.exact_wall_s, 4),
        "scipy_solve_wall_s": round(totals.scipy_wall_s, 4),
        "presolve_rows_removed": totals.presolve_rows_removed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_synth.json")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--benchmarks", nargs="*", default=list(DEFAULT_BENCHMARKS)
    )
    parser.add_argument(
        "--cache",
        default=".tels-cache",
        help="persistent cache directory for the cold/warm phases",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent-cache phases",
    )
    args = parser.parse_args(argv)
    cache_dir = None if args.no_cache else args.cache
    result = run_bench(
        tuple(args.benchmarks), jobs=args.jobs, cache_dir=cache_dir
    )
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    # A vector-tier hit short-circuits the whole check, so the warm run's
    # analysis tier sees no traffic at all; the reuse invariant is that the
    # vector tier answers every warm lookup.
    if result["warm_vector_hit_rate"] < 1.0:
        print("FAIL: warm re-run did not fully reuse the result store")
        return 1
    # The persistent warm phase starts from an empty in-memory store, so
    # every first-touch lookup must be answered by the on-disk tier.
    if cache_dir is not None and result["persistent_warm_hit_rate"] < 1.0:
        print("FAIL: persistent warm phase missed the on-disk cache")
        return 1
    # Every synthesized network must come out of the engine lint-clean.
    if result["lint_violations"] != 0:
        print("FAIL: lint smoke phase found violations in synthesized output")
        return 1
    # Without fault injection the resilience layer must stay invisible:
    # a degraded cone here means a deadline/retry bug, not a real fault.
    if result["degraded_cones"] != 0:
        print("FAIL: cones degraded without fault injection")
        return 1
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
