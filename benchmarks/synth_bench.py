"""Bench smoke for CI: time the engine on a Table-I subset.

Writes ``BENCH_synth.json`` with per-benchmark wall time, gate count, and
the store cache-hit rates for both a cold run and a warm re-run against the
same shared store — the number CI tracks to catch regressions in the
shared-result-store reuse.  Two further phases cover the axes the cold/warm
pair cannot: a delta phase re-synthesizes the subset at a bumped
``delta_on`` over the same store (only the analysis tier can answer, so its
hit rate proves the delta-independent checker split still works), and a
gate-model phase runs the ``parmix`` stressor once per ``repro.gates``
backend and asserts the model-specific outcomes (ILP traffic and fast-path
refutations under ``ltg``; strictly fewer gates under ``multi-threshold``).

Run as a module::

    python -m benchmarks.synth_bench [-o BENCH_synth.json] [--jobs N]

(or ``python benchmarks/synth_bench.py`` with ``src`` on ``PYTHONPATH``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: Small, fast Table-I subset — CI smoke, not the full suite.
DEFAULT_BENCHMARKS = ("cm152a", "cm85a", "cmb", "comp")


def run_bench(
    names: tuple[str, ...] = DEFAULT_BENCHMARKS,
    psi: int = 3,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict:
    from repro.benchgen.extended import build_extended_benchmark
    from repro.core.area import network_stats
    from repro.core.synthesis import SynthesisOptions, synthesize_with_report
    from repro.core.verify import verify_threshold_network
    from repro.engine.store import ResultStore
    from repro.network.scripts import prepare_tels

    from repro.core.identify import CheckStats

    store = ResultStore()
    options = SynthesisOptions(psi=psi, seed=seed)
    rows = []
    totals = CheckStats()
    degraded_cones = 0
    for name in names:
        source = build_extended_benchmark(name)
        prepared = prepare_tels(source)
        start = time.perf_counter()
        network, report = synthesize_with_report(
            prepared, options, jobs=jobs, store=store
        )
        wall = time.perf_counter() - start
        if not verify_threshold_network(source, network, vectors=256):
            raise SystemExit(f"bench verification failed on {name!r}")
        stats = network_stats(network)
        check = report.checker.stats
        rows.append(
            {
                "benchmark": name,
                "gates": stats.gates,
                "levels": stats.levels,
                "area": stats.area,
                "wall_s": round(wall, 4),
                "checker_calls": check.calls,
                "checker_cache_hit_rate": round(check.cache_hit_rate, 4),
                "ilp_solves": check.ilp_solved,
                "fastpath_hit_rate": round(check.fastpath_hit_rate, 4),
                "exact_solve_wall_s": round(check.exact_wall_s, 4),
                "scipy_solve_wall_s": round(check.scipy_wall_s, 4),
            }
        )
        totals.add(check)
        degraded_cones += report.degraded_cones

    # Warm re-run over the same store: near-total reuse is the invariant.
    # Preparation stays outside the clock so warm_wall_s is comparable to
    # the per-benchmark wall_s (which also times synthesis only).
    warm_nets = [prepare_tels(build_extended_benchmark(n)) for n in names]
    warm_before = store.stats.snapshot()
    start = time.perf_counter()
    for prepared in warm_nets:
        synthesize_with_report(prepared, options, jobs=jobs, store=store)
    warm_wall = time.perf_counter() - start
    warm = store.stats.since(warm_before)

    # Delta phase: re-synthesize the same subset with a bumped ``delta_on``
    # over the *same* store.  The tolerances change every ILP answer, so the
    # vector tier cannot help — but the delta-independent analysis half of
    # each check (cover minimization, unate rewrite, complement) is reused
    # from the analysis tier.  This is the traffic the always-zero per-row
    # analysis column used to pretend to measure: analysis hits only appear
    # when the *same* store answers checks under *different* tolerances.
    delta_options = SynthesisOptions(psi=psi, seed=seed, delta_on=1)
    delta_before = store.stats.snapshot()
    start = time.perf_counter()
    for prepared in warm_nets:
        synthesize_with_report(prepared, delta_options, jobs=jobs, store=store)
    delta_wall = time.perf_counter() - start
    delta = store.stats.since(delta_before)

    # Persistent-cache phases (when a cache directory is given): each phase
    # starts from a *fresh* in-memory store so every first-touch lookup has
    # to go through the on-disk tier.  The cold phase populates (or, on a
    # repeated bench invocation in the same workdir, reuses) the cache; the
    # warm phase must then answer every lookup from disk.
    persistent: dict = {}
    if cache_dir is not None:

        def _persistent_phase() -> tuple[float, "ResultStore"]:
            pstore = ResultStore.with_cache_dir(cache_dir)
            start = time.perf_counter()
            for prepared in warm_nets:
                synthesize_with_report(
                    prepared, options, jobs=jobs, store=pstore
                )
            return time.perf_counter() - start, pstore

        cold_wall_p, cold_store = _persistent_phase()
        warm_wall_p, warm_store = _persistent_phase()
        persistent = {
            "cache_dir": str(cache_dir),
            "persistent_cold_wall_s": round(cold_wall_p, 4),
            "persistent_warm_wall_s": round(warm_wall_p, 4),
            "persistent_cold_hits": cold_store.stats.persistent_hits,
            "persistent_cold_hit_rate": round(
                cold_store.stats.persistent_hit_rate, 4
            ),
            "persistent_warm_hits": warm_store.stats.persistent_hits,
            "persistent_warm_hit_rate": round(
                warm_store.stats.persistent_hit_rate, 4
            ),
            "persistent_transformed_hits": warm_store.stats.transformed_hits,
            "persistent_entries": len(warm_store.persistent),
        }

    # Gate-model phase: the parmix stressor (parity + wide-threshold +
    # non-threshold cones) synthesized once per registered backend at a
    # fanin bound that admits the 9-support cone whole.  Each model gets a
    # fresh store (the comparison measures the models, not cache reuse) and
    # sharing preservation is off so the parity cone collapses to primary
    # inputs, where the multi-threshold search can absorb it into a single
    # k-threshold gate.  The tracked invariants: under ``ltg`` the subset
    # exercises the ILP (9 support vars defeat the Chow fast path) and the
    # two-monotonicity refutation; under ``multi-threshold`` the same
    # circuit needs strictly fewer gates than under ``ltg``.
    from repro.gates import model_names

    gate_models: dict = {}
    gm_source = build_extended_benchmark("parmix")
    gm_prepared = prepare_tels(build_extended_benchmark("parmix"))
    for model in model_names():
        gm_options = SynthesisOptions(
            psi=9, seed=seed, gate_model=model, preserve_sharing=False
        )
        start = time.perf_counter()
        gm_net, gm_report = synthesize_with_report(
            gm_prepared, gm_options, jobs=jobs, store=ResultStore()
        )
        gm_wall = time.perf_counter() - start
        if not verify_threshold_network(gm_source, gm_net, vectors=256):
            raise SystemExit(
                f"gate-model bench verification failed under {model!r}"
            )
        gm_stats = network_stats(gm_net)
        gm_check = gm_report.checker.stats
        gate_models[model] = {
            "benchmark": "parmix",
            "gates": gm_stats.gates,
            "levels": gm_stats.levels,
            "area": gm_stats.area,
            "wall_s": round(gm_wall, 4),
            "ilp_solves": gm_check.ilp_solved,
            "fastpath_negatives": gm_check.fastpath_negatives,
            "multithreshold_hits": gm_check.multithreshold_hits,
            "flash_requantized": gm_check.flash_requantized,
        }
        degraded_cones += gm_report.degraded_cones

    # Lint smoke phase: the full rule set re-linted over every synthesized
    # network.  Every violation here is a synthesis bug, so the tracked
    # invariant is a flat zero; the wall time watches for rule-cost creep.
    from repro.lint.diagnostics import LintOptions
    from repro.lint.runner import run_lint

    lint_violations = 0
    start = time.perf_counter()
    for name in names:
        source = build_extended_benchmark(name)
        network, _ = synthesize_with_report(
            prepare_tels(source), options, jobs=jobs, store=store
        )
        lint_report = run_lint(network, LintOptions(psi=psi), source=source)
        lint_violations += lint_report.violations
    lint_wall = time.perf_counter() - start

    return {
        "psi": psi,
        "seed": seed,
        "jobs": jobs,
        **persistent,
        "lint_wall_s": round(lint_wall, 4),
        "lint_violations": lint_violations,
        "degraded_cones": degraded_cones,
        "benchmarks": rows,
        "cold_wall_s": round(sum(r["wall_s"] for r in rows), 4),
        "warm_wall_s": round(warm_wall, 4),
        "warm_vector_hit_rate": round(warm.vector_hit_rate, 4),
        "warm_analysis_hit_rate": round(warm.analysis_hit_rate, 4),
        "delta_wall_s": round(delta_wall, 4),
        "delta_analysis_hits": delta.analysis_hits,
        "delta_analysis_hit_rate": round(delta.analysis_hit_rate, 4),
        "gate_models": gate_models,
        "store_entries": len(store),
        "ilp_solves_total": totals.ilp_solved,
        "fastpath_hit_rate": round(totals.fastpath_hit_rate, 4),
        "fastpath_hits": totals.fastpath_hits,
        "fastpath_negatives": totals.fastpath_negatives,
        "fastpath_misses": totals.fastpath_misses,
        "exact_solves": totals.exact_solves,
        "scipy_solves": totals.scipy_solves,
        "exact_solve_wall_s": round(totals.exact_wall_s, 4),
        "scipy_solve_wall_s": round(totals.scipy_wall_s, 4),
        "presolve_rows_removed": totals.presolve_rows_removed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_synth.json")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--benchmarks", nargs="*", default=list(DEFAULT_BENCHMARKS)
    )
    parser.add_argument(
        "--cache",
        default=".tels-cache",
        help="persistent cache directory for the cold/warm phases",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent-cache phases",
    )
    args = parser.parse_args(argv)
    cache_dir = None if args.no_cache else args.cache
    result = run_bench(
        tuple(args.benchmarks), jobs=args.jobs, cache_dir=cache_dir
    )
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    # A vector-tier hit short-circuits the whole check, so the warm run's
    # analysis tier sees no traffic at all; the reuse invariant is that the
    # vector tier answers every warm lookup.
    if result["warm_vector_hit_rate"] < 1.0:
        print("FAIL: warm re-run did not fully reuse the result store")
        return 1
    # The persistent warm phase starts from an empty in-memory store, so
    # every first-touch lookup must be answered by the on-disk tier.
    if cache_dir is not None and result["persistent_warm_hit_rate"] < 1.0:
        print("FAIL: persistent warm phase missed the on-disk cache")
        return 1
    # The tolerance bump invalidates every vector-tier entry, so reuse in
    # the delta phase can only come from the analysis tier; zero hits there
    # means the delta-independent split of the checker regressed.
    if result["delta_analysis_hit_rate"] <= 0.0:
        print("FAIL: delta re-synthesis reused nothing from the analysis tier")
        return 1
    # The gate-model stressor must hit the paths it was built to hit:
    # a 9-support cone the fast path cannot decide (ILP traffic) and a
    # unate non-threshold cone the two-monotonicity screen refutes.
    gm = result["gate_models"]
    if gm["ltg"]["ilp_solves"] <= 0:
        print("FAIL: gate-model phase never reached the ILP under ltg")
        return 1
    if gm["ltg"]["fastpath_negatives"] <= 0:
        print("FAIL: gate-model phase never refuted a cone under ltg")
        return 1
    # The point of the multi-threshold backend: the parity cone collapses
    # into a single k-threshold gate, so parmix must come out strictly
    # smaller than the single-threshold result.
    if gm["multi-threshold"]["gates"] >= gm["ltg"]["gates"]:
        print("FAIL: multi-threshold did not beat ltg on parmix")
        return 1
    # Every synthesized network must come out of the engine lint-clean.
    if result["lint_violations"] != 0:
        print("FAIL: lint smoke phase found violations in synthesized output")
        return 1
    # Without fault injection the resilience layer must stay invisible:
    # a degraded cone here means a deadline/retry bug, not a real fault.
    if result["degraded_cones"] != 0:
        print("FAIL: cones degraded without fault injection")
        return 1
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
