"""Ablation — Theorem-2 combining on/off (DESIGN.md §6).

Theorem 2 lets the larger threshold half of an OR split absorb the smaller
half through one high-weight input, saving the explicit OR root gate.  This
ablation measures gates and area with the combining step disabled.
"""

from __future__ import annotations

import pytest

from repro.benchgen.mcnc import benchmark_names, build_benchmark
from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.verify import verify_threshold_network
from repro.network.scripts import prepare_tels

NAMES = benchmark_names(include_large=False)


@pytest.fixture(scope="module")
def ablation_results():
    rows = []
    for name in NAMES:
        source = build_benchmark(name)
        prepared = prepare_tels(source)
        with_t2, report_on = synthesize_with_report(
            prepared, SynthesisOptions(psi=3, apply_theorem2=True)
        )
        without_t2, report_off = synthesize_with_report(
            prepared, SynthesisOptions(psi=3, apply_theorem2=False)
        )
        assert verify_threshold_network(source, with_t2, vectors=256)
        assert verify_threshold_network(source, without_t2, vectors=256)
        rows.append(
            (
                name,
                network_stats(with_t2),
                network_stats(without_t2),
                report_on.theorem2_applications,
            )
        )
    return rows


def test_print_ablation(ablation_results):
    print()
    print("Theorem-2 combining ablation — gates (area) and applications")
    print(f"{'benchmark':10s} {'with':>12s} {'without':>12s} {'hits':>5s}")
    for name, on, off, hits in ablation_results:
        print(
            f"{name:10s} {on.gates:5d} ({on.area:5d}) {off.gates:5d} "
            f"({off.area:5d}) {hits:5d}"
        )


def test_theorem2_is_applied_somewhere(ablation_results):
    assert sum(r[3] for r in ablation_results) > 0


def test_theorem2_never_increases_gate_count(ablation_results):
    total_on = sum(r[1].gates for r in ablation_results)
    total_off = sum(r[2].gates for r in ablation_results)
    assert total_on <= total_off


def test_benchmark_with_theorem2(benchmark):
    prepared = prepare_tels(build_benchmark("x1"))
    from repro.core.synthesis import synthesize

    benchmark(
        lambda: synthesize(prepared, SynthesisOptions(psi=3, apply_theorem2=True))
    )
