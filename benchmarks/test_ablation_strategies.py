"""Ablation — splitting strategies (the paper's future-work directions).

Compares the paper's Fig. 7 heuristic against the two extensions the
conclusion suggests exploring: ILP-guided lookahead splitting and
depth-oriented balanced splitting, across the Table-I suite.
"""

from __future__ import annotations

import pytest

from repro.benchgen.mcnc import benchmark_names, build_benchmark
from repro.core.area import network_stats
from repro.core.strategies import STRATEGIES
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.verify import verify_threshold_network
from repro.network.scripts import prepare_tels

NAMES = benchmark_names(include_large=False)


@pytest.fixture(scope="module")
def strategy_results():
    rows = {}
    for name in NAMES:
        source = build_benchmark(name)
        prepared = prepare_tels(source)
        per_strategy = {}
        for strategy in STRATEGIES:
            th = synthesize(
                prepared,
                SynthesisOptions(psi=3, splitting_strategy=strategy),
            )
            assert verify_threshold_network(source, th, vectors=256), (
                name,
                strategy,
            )
            per_strategy[strategy] = network_stats(th)
        rows[name] = per_strategy
    return rows


def test_print_ablation(strategy_results):
    print()
    print("Splitting strategy ablation — TELS gates (levels)")
    header = f"{'benchmark':10s}" + "".join(
        f" {s:>16s}" for s in STRATEGIES
    )
    print(header)
    for name, per in strategy_results.items():
        cells = "".join(
            f" {per[s].gates:10d} ({per[s].levels:2d})" for s in STRATEGIES
        )
        print(f"{name:10s}{cells}")
    totals = {
        s: sum(per[s].gates for per in strategy_results.values())
        for s in STRATEGIES
    }
    print(
        f"{'TOTAL':10s}"
        + "".join(f" {totals[s]:10d}     " for s in STRATEGIES)
    )


def test_all_strategies_verified(strategy_results):
    assert len(strategy_results) == len(NAMES)


def test_lookahead_not_worse_than_paper(strategy_results):
    paper = sum(per["paper"].gates for per in strategy_results.values())
    lookahead = sum(
        per["lookahead"].gates for per in strategy_results.values()
    )
    assert lookahead <= paper * 1.05


def test_balanced_levels_reasonable(strategy_results):
    """Balanced splitting targets depth: total levels should not blow up."""
    paper = sum(per["paper"].levels for per in strategy_results.values())
    balanced = sum(
        per["balanced"].levels for per in strategy_results.values()
    )
    assert balanced <= paper * 1.3


def _unate_workload(count: int = 30, seed: int = 0):
    """Single-node networks with wide unate covers: the workload where the
    splitting heuristic actually decides the outcome (the benchmark suite's
    collapsed nodes are mostly narrow enough to skip rule 3 entirely —
    which the suite table above demonstrates)."""
    import random

    from repro.boolean.cover import Cover
    from repro.boolean.cube import Cube
    from repro.boolean.function import BooleanFunction
    from repro.boolean.unate import syntactic_unateness
    from repro.network.network import BooleanNetwork

    rng = random.Random(seed)
    nets = []
    while len(nets) < count:
        nvars = rng.randint(6, 9)
        cubes = []
        for _ in range(rng.randint(5, 9)):
            lits = {
                var: True
                for var in rng.sample(range(nvars), rng.randint(2, 3))
            }
            cubes.append(Cube.from_literals(lits, nvars))
        cover = Cover(cubes, nvars).scc()
        if cover.num_cubes < 4:
            continue
        if not syntactic_unateness(cover).is_unate:
            continue
        names = tuple(f"x{i}" for i in range(nvars))
        net = BooleanNetwork(f"unate{len(nets)}")
        for n in names:
            net.add_input(n)
        net.add_node("f", BooleanFunction(cover, names).trimmed())
        net.add_output("f")
        nets.append(net)
    return nets


@pytest.fixture(scope="module")
def synthetic_results():
    nets = _unate_workload()
    totals = {}
    for strategy in STRATEGIES:
        gates = levels = 0
        for net in nets:
            th = synthesize(
                net, SynthesisOptions(psi=4, splitting_strategy=strategy)
            )
            assert verify_threshold_network(net, th), (net.name, strategy)
            stats = network_stats(th)
            gates += stats.gates
            levels += stats.levels
        totals[strategy] = (gates, levels)
    return totals


def test_print_synthetic_workload(synthetic_results):
    print()
    print("Wide-unate synthetic workload — total gates (total levels)")
    for strategy, (gates, levels) in synthetic_results.items():
        print(f"  {strategy:10s} {gates:5d} ({levels})")


def test_lookahead_wins_on_synthetic_workload(synthetic_results):
    assert (
        synthetic_results["lookahead"][0] <= synthetic_results["paper"][0]
    )


def test_benchmark_lookahead(benchmark):
    prepared = prepare_tels(build_benchmark("term1"))
    benchmark(
        lambda: synthesize(
            prepared,
            SynthesisOptions(psi=3, splitting_strategy="lookahead"),
        )
    )
