"""E3 — Fig. 11: failure rate vs weight-variation multiplier.

For δ_on in 0..3 (δ_off = 1) the suite is re-synthesized and disturbed with
``w' = w + v*U(-0.5, 0.5)``.  The paper's claims: failure rate grows with
``v`` and shrinks as δ_on grows (the network is more robust).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig11 import format_fig11, run_fig11

DELTAS = (0, 1, 2, 3)
MULTIPLIERS = (0.2, 0.6, 1.0, 1.4, 1.8)


@pytest.fixture(scope="module")
def fig11_points(table1_names):
    names = [n for n in table1_names if n != "i10"]
    return run_fig11(
        names=names,
        delta_ons=DELTAS,
        multipliers=MULTIPLIERS,
        trials=3,
        vectors=256,
    )


def test_print_fig11(fig11_points):
    print()
    print(format_fig11(fig11_points))


def test_rates_are_percentages(fig11_points):
    assert all(0.0 <= p.failure_rate_percent <= 100.0 for p in fig11_points)


def test_failure_grows_with_v(fig11_points):
    for delta in DELTAS:
        series = sorted(
            (p.v, p.failure_rate_percent)
            for p in fig11_points
            if p.delta_on == delta
        )
        assert series[-1][1] >= series[0][1], delta


def test_delta_on_improves_robustness(fig11_points):
    """At every multiplier, delta_on=3 fails no more often than delta_on=0."""
    by_key = {(p.delta_on, p.v): p.failure_rate_percent for p in fig11_points}
    for v in MULTIPLIERS:
        assert by_key[(3, v)] <= by_key[(0, v)], v


def test_small_variation_with_tolerance_rarely_fails(fig11_points):
    by_key = {(p.delta_on, p.v): p.failure_rate_percent for p in fig11_points}
    assert by_key[(3, 0.2)] <= 20.0


def test_benchmark_defect_trial(benchmark):
    """Time one disturbed-weight simulation of a mid-size benchmark."""
    import random

    from repro.core.defects import run_defect_trial
    from repro.experiments.flows import run_flows

    flow = run_flows("cm85a", psi=3)
    rng = random.Random(0)
    benchmark(
        lambda: run_defect_trial(flow.source, flow.tels, 0.8, rng, vectors=256)
    )
