"""E2 — Fig. 10: gate count vs fanin restriction for ``comp``.

The paper's claims: relaxing ψ from 3 to 8 shrinks the one-to-one mapped
network significantly (better Boolean decomposition) while TELS stays almost
flat (wide functions are rarely threshold), so the TELS advantage narrows
but persists; a fanin restriction of 3-5 is the sweet spot.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig10 import format_fig10, run_fig10

FANINS = (3, 4, 5, 6, 7, 8)


@pytest.fixture(scope="module")
def fig10_points():
    return run_fig10("comp", fanins=FANINS)


def test_print_fig10(fig10_points):
    print()
    print(format_fig10(fig10_points, "comp"))


def test_one_to_one_improves_with_fanin(fig10_points):
    gates = [p.one_to_one_gates for p in fig10_points]
    assert gates[-1] < gates[0]


def test_tels_nearly_flat(fig10_points):
    """TELS variation across the sweep is small relative to one-to-one's."""
    tels = [p.tels_gates for p in fig10_points]
    oto = [p.one_to_one_gates for p in fig10_points]
    tels_swing = max(tels) - min(tels)
    oto_swing = max(oto) - min(oto)
    assert tels_swing <= oto_swing


def test_tels_wins_at_small_fanin(fig10_points):
    by_psi = {p.psi: p for p in fig10_points}
    assert by_psi[3].tels_gates < by_psi[3].one_to_one_gates


def test_benchmark_fig10_point(benchmark):
    """Time one sweep point end to end (ψ=4, cache bypassed)."""
    from repro.benchgen.mcnc import build_benchmark
    from repro.core.synthesis import SynthesisOptions, synthesize
    from repro.network.scripts import prepare_tels

    prepared = prepare_tels(build_benchmark("comp"))
    benchmark(lambda: synthesize(prepared, SynthesisOptions(psi=4)))
