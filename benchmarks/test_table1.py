"""E1 — Table I: threshold synthesis results with fanin restriction 3.

Regenerates both columns (one-to-one mapping and TELS) for the benchmark
suite, prints the measured table next to the paper's reduction percentages,
and asserts the paper's qualitative claims:

* TELS produces substantially fewer gates overall (paper: 52% average);
* every synthesized network is functionally verified;
* the better-of-two selection never loses to one-to-one mapping.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import format_table1, run_table1


@pytest.fixture(scope="module")
def table1_rows(table1_names):
    return run_table1(table1_names, psi=3)


def test_print_table1(table1_rows):
    print()
    print(format_table1(table1_rows))


def test_all_rows_verified(table1_rows):
    assert all(row.flow.verified for row in table1_rows)


def test_substantial_average_reduction(table1_rows):
    reducible = [r for r in table1_rows if r.name != "tcon"]
    mean = sum(r.flow.gate_reduction_percent for r in reducible) / len(reducible)
    assert mean > 25.0, mean


def test_every_reducible_benchmark_improves(table1_rows):
    for row in table1_rows:
        if row.name == "tcon":
            continue  # wiring-dominated: the paper's no-win case
        assert row.flow.gate_reduction_percent > 0, row.name


def test_better_of_two_guarantee(table1_rows):
    for row in table1_rows:
        assert row.flow.best.num_gates <= row.flow.one_to_one_stats.gates


def test_benchmark_table1_synthesis(benchmark, table1_names):
    """Time one full TELS run (the smallest benchmark, cache bypassed)."""
    from repro.benchgen.mcnc import build_benchmark
    from repro.core.synthesis import SynthesisOptions, synthesize
    from repro.network.scripts import prepare_tels

    source = build_benchmark("cmb")
    prepared = prepare_tels(source)

    benchmark(lambda: synthesize(prepared, SynthesisOptions(psi=3)))
