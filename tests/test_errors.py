"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BlifError,
    CoverError,
    IlpError,
    NetworkError,
    PlaError,
    ReproError,
    SynthesisError,
    UnboundedError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [BlifError, CoverError, IlpError, NetworkError, PlaError, SynthesisError],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_unbounded_is_ilp_error(self):
        assert issubclass(UnboundedError, IlpError)

    def test_blif_error_line_numbers(self):
        err = BlifError("bad row", line_number=17)
        assert "line 17" in str(err)
        assert err.line_number == 17

    def test_blif_error_without_line(self):
        err = BlifError("bad row")
        assert str(err) == "bad row"
        assert err.line_number is None

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise SynthesisError("nope")
