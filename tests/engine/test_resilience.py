"""Resilience layer: deadlines, degradation, crash recovery, chaos runs.

The contract under test: whatever faults the chaos harness injects on the
recoverable paths, ``run_synthesis`` completes with a network that is
simulation-equivalent to its source and lint-clean, and every cone that
could not be synthesized is listed as degraded (one-to-one fallback).
Without injection the resilience layer must be invisible: zero degraded
cones and bit-identical output.
"""

from __future__ import annotations

import time

import pytest

from repro.benchgen.paper_examples import motivational_network
from repro.benchgen.random_logic import random_logic_network
from repro.core.synthesis import SynthesisOptions
from repro.core.verify import verify_threshold_network
from repro.engine.resilience import (
    Deadline,
    ResiliencePolicy,
    cone_subnetwork,
    fallback_cone_gates,
)
from repro.engine.scheduler import run_synthesis
from repro.engine.tasks import preserved_set
from repro.errors import DeadlineExceeded, SynthesisError
from repro.faults.injector import CHAOS_ENV
from repro.ilp.backends import get_backend
from repro.lint.diagnostics import LintOptions
from repro.lint.runner import run_lint
from repro.network.scripts import prepare_tels


def _gate_list(net):
    return [
        (g.name, g.inputs, g.weights, g.threshold, g.delta_on, g.delta_off)
        for g in net.gates()
    ]


def _source():
    return random_logic_network(
        "resil", num_inputs=8, num_outputs=3, num_nodes=14, seed=11
    )


def _check(source, result, psi=3):
    """Every resilient run must stay equivalent and lint-clean."""
    assert verify_threshold_network(source, result.network)
    lint = run_lint(result.network, LintOptions(psi=psi), source=source)
    assert lint.violations == 0


class TestDeadline:
    def test_after_none_is_unbudgeted(self):
        assert Deadline.after(None) is None

    def test_fresh_deadline_has_budget(self):
        deadline = Deadline.after(60.0)
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired
        deadline.check("anything")  # must not raise

    def test_expired_deadline_raises_with_context(self):
        deadline = Deadline(0.0)
        time.sleep(0.001)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="during cone 'z'"):
            deadline.check("cone 'z'")

    def test_policy_lifts_options(self):
        options = SynthesisOptions(
            deadline_per_cone_s=1.5,
            deadline_total_s=9.0,
            max_attempts=5,
            strict_synthesis=True,
        )
        policy = ResiliencePolicy.from_options(options)
        assert policy.deadline_per_cone_s == 1.5
        assert policy.deadline_total_s == 9.0
        assert policy.max_attempts == 5
        assert policy.strict
        assert policy.watchdog_needed
        assert not ResiliencePolicy().watchdog_needed


class TestFallback:
    def test_fallback_gates_cover_the_cone(self):
        source = motivational_network()
        net = prepare_tels(source)
        preserved = preserved_set(net, preserve_sharing=True)
        root = next(o for o in net.outputs if net.has_node(o))
        options = SynthesisOptions(psi=3)
        gates, discovered = fallback_cone_gates(
            net, root, preserved, options
        )
        names = {g.name for g in gates}
        assert root in names
        for gate in gates:
            assert len(gate.inputs) <= options.psi
            if gate.name != root:
                assert gate.name.startswith(f"{root}$f")
        for signal in discovered:
            assert net.has_node(signal)

    def test_cone_subnetwork_stops_at_boundaries(self):
        net = prepare_tels(motivational_network())
        preserved = preserved_set(net, preserve_sharing=True)
        root = next(o for o in net.outputs if net.has_node(o))
        cone, discovered = cone_subnetwork(net, root, preserved)
        assert list(cone.outputs) == [root]
        for signal in cone.inputs:
            assert (
                net.is_input(signal)
                or signal in preserved
                or not net.has_node(signal)
            )
        assert set(discovered) <= set(cone.inputs)


class TestDeadlineDegradation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_tiny_per_cone_deadline_degrades_everything(self, jobs):
        source = _source()
        net = prepare_tels(source)
        options = SynthesisOptions(
            psi=3, deadline_per_cone_s=1e-6, watchdog_grace_s=30.0
        )
        result = run_synthesis(net, options, jobs=jobs)
        report = result.report
        assert report.degraded_cones == len(result.trace.tasks)
        assert report.degraded_cones > 0
        assert all(d.reason == "deadline" for d in report.degraded)
        assert {t for t, _r in result.trace.degraded} == {
            d.task_id for d in report.degraded
        }
        _check(source, result)

    def test_tiny_total_deadline_degrades_everything(self):
        source = _source()
        net = prepare_tels(source)
        options = SynthesisOptions(psi=3, deadline_total_s=1e-9)
        result = run_synthesis(net, options)
        report = result.report
        assert report.degraded_cones > 0
        assert all(d.reason == "total-deadline" for d in report.degraded)
        _check(source, result)

    def test_strict_synthesis_raises_instead_of_degrading(self):
        net = prepare_tels(_source())
        options = SynthesisOptions(
            psi=3, deadline_per_cone_s=1e-6, strict_synthesis=True
        )
        with pytest.raises(SynthesisError, match="strict synthesis"):
            run_synthesis(net, options)

    def test_degraded_network_matches_one_to_one_area_bound(self):
        """A fully degraded run is exactly the per-cone one-to-one fallback,
        so it still respects the fanin bound everywhere."""
        net = prepare_tels(_source())
        options = SynthesisOptions(psi=3, deadline_per_cone_s=1e-6)
        result = run_synthesis(net, options)
        for gate in result.network.gates():
            assert len(gate.inputs) <= options.psi


class TestChaosWorkerCrashes:
    def test_crash_storm_quarantines_and_recovers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "worker=1.0:1")
        source = _source()
        net = prepare_tels(source)
        options = SynthesisOptions(psi=3, retry_backoff_s=0.01)
        result = run_synthesis(net, options, jobs=2)
        assert result.trace.pool_rebuilds >= 1
        assert result.trace.quarantined
        assert result.report.degraded_cones > 0
        assert all(
            d.reason == "quarantined" for d in result.report.degraded
        )
        _check(source, result)

    def test_moderate_crash_rate_completes_equivalent(self, monkeypatch):
        source = _source()
        net = prepare_tels(source)
        options = SynthesisOptions(psi=3, retry_backoff_s=0.01)
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        clean = run_synthesis(net, SynthesisOptions(psi=3))
        monkeypatch.setenv(CHAOS_ENV, "worker=0.4:3")
        result = run_synthesis(net, options, jobs=2)
        _check(source, result)
        if result.report.degraded_cones == 0:
            # Crash-retry recovery alone must not change the output.
            assert _gate_list(result.network) == _gate_list(clean.network)

    def test_worker_chaos_is_inert_in_serial_runs(self, monkeypatch):
        """The worker/stall sites model process deaths; the serial backend
        has no worker processes, so the same env must change nothing."""
        source = _source()
        net = prepare_tels(source)
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        clean = run_synthesis(net, SynthesisOptions(psi=3))
        monkeypatch.setenv(CHAOS_ENV, "worker=1.0,stall=1.0:9")
        chaotic = run_synthesis(net, SynthesisOptions(psi=3))
        assert chaotic.report.degraded_cones == 0
        assert _gate_list(chaotic.network) == _gate_list(clean.network)


class TestChaosStalls:
    def test_watchdog_reaps_stalled_workers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "stall=1.0:1")
        source = _source()
        net = prepare_tels(source)
        options = SynthesisOptions(
            psi=3, deadline_per_cone_s=0.25, watchdog_grace_s=0.3
        )
        result = run_synthesis(net, options, jobs=2)
        assert result.trace.watchdog_kills > 0
        assert result.report.degraded_cones > 0
        assert all(d.reason == "deadline" for d in result.report.degraded)
        _check(source, result)


class TestChaosSolver:
    def test_solver_timeouts_fall_back_to_exact(self, monkeypatch):
        if not get_backend("scipy").available():
            pytest.skip("solver chaos targets the scipy attempt")
        monkeypatch.setenv(CHAOS_ENV, "solver=1.0:2")
        source = _source()
        net = prepare_tels(source)
        result = run_synthesis(net, SynthesisOptions(psi=3))
        assert result.report.degraded_cones == 0
        stats = result.report.checker.stats
        if stats.ilp_solved:
            assert stats.solver_timeouts > 0
            assert stats.exact_solves > 0
        _check(source, result)

    def test_wrong_solver_answers_are_caught(self, monkeypatch):
        if not get_backend("scipy").available():
            pytest.skip("solver chaos targets the scipy attempt")
        monkeypatch.setenv(CHAOS_ENV, "solver-wrong=1.0:4")
        source = _source()
        net = prepare_tels(source)
        result = run_synthesis(net, SynthesisOptions(psi=3))
        assert result.report.degraded_cones == 0
        _check(source, result)


class TestChaosEndToEnd:
    def test_combined_chaos_differential(self, tmp_path, monkeypatch):
        """The acceptance scenario: >=10% worker crashes plus solver
        timeouts plus cache faults, and the run still completes with a
        verified, lint-clean network."""
        source = _source()
        net = prepare_tels(source)
        monkeypatch.setenv(CHAOS_ENV, "worker=0.2,solver=0.3,cache=0.3:5")
        options = SynthesisOptions(psi=3, retry_backoff_s=0.01)
        result = run_synthesis(
            net, options, jobs=2, cache_dir=str(tmp_path / "cache")
        )
        _check(source, result)
        for degraded in result.report.degraded:
            assert degraded.reason in {
                "deadline",
                "quarantined",
                "retry-exhausted",
            }

    def test_no_chaos_means_no_degradation(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        source = _source()
        net = prepare_tels(source)
        result = run_synthesis(net, SynthesisOptions(psi=3), jobs=2)
        assert result.report.degraded_cones == 0
        assert result.trace.retries == 0
        assert result.trace.pool_rebuilds == 0
        _check(source, result)


class TestBrokenPoolRecovery:
    def test_single_crash_requeues_and_matches_serial(self, monkeypatch):
        """One injected worker death: the pool is rebuilt, the cone is
        retried, and the final network is identical to a serial clean run
        (recovery must not perturb determinism)."""
        source = _source()
        net = prepare_tels(source)
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        serial = run_synthesis(net, SynthesisOptions(psi=3))
        # Rate 0.12 with this seed kills exactly one first attempt and no
        # retries (decisions are keyed on task:attempt, so retries survive).
        monkeypatch.setenv(CHAOS_ENV, "worker=0.12:0")
        options = SynthesisOptions(psi=3, retry_backoff_s=0.01)
        recovered = run_synthesis(net, options, jobs=2)
        assert recovered.trace.pool_rebuilds >= 1
        assert recovered.trace.requeues >= 1
        assert recovered.report.degraded_cones == 0
        assert _gate_list(recovered.network) == _gate_list(serial.network)
        _check(source, recovered)
