"""Scheduler event subscription and cooperative cancellation."""

from __future__ import annotations

import threading

import pytest

from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.engine.scheduler import run_synthesis
from repro.engine.store import ResultStore
from repro.errors import SynthesisCancelled
from repro.network.scripts import prepare_tels


class TestOnEvent:
    def test_events_cover_every_task(self, motivational_network):
        events: list[dict] = []
        prepared = prepare_tels(motivational_network)
        network, report = synthesize_with_report(
            prepared, SynthesisOptions(), on_event=events.append
        )
        done = [e for e in events if e["event"] == "task-done"]
        assert len(done) == report.trace.num_tasks
        # Monotonic completion counter, ending at the full task count.
        assert [e["completed"] for e in done] == list(
            range(1, len(done) + 1)
        )
        assert done[-1]["completed"] == done[-1]["scheduled"]
        phases = {e["phase"] for e in events if e["event"] == "phase"}
        assert {"collapse", "check", "done"} <= phases

    def test_listener_exception_does_not_fail_the_run(
        self, motivational_network
    ):
        calls = {"n": 0}

        def bomb(event: dict) -> None:
            calls["n"] += 1
            raise RuntimeError("listener bug")

        prepared = prepare_tels(motivational_network)
        network, _ = synthesize_with_report(
            prepared, SynthesisOptions(), on_event=bomb
        )
        assert network.gates  # synthesis finished regardless
        assert calls["n"] == 1  # delivery disabled after the first failure

    def test_no_listener_no_events(self, motivational_network):
        prepared = prepare_tels(motivational_network)
        network, _ = synthesize_with_report(prepared, SynthesisOptions())
        assert network.gates


class TestCancellation:
    def test_preset_flag_cancels_before_any_cone(self, motivational_network):
        cancel = threading.Event()
        cancel.set()
        prepared = prepare_tels(motivational_network)
        with pytest.raises(SynthesisCancelled) as err:
            run_synthesis(prepared, cancel=cancel)
        assert "unfinished" in str(err.value)

    def test_cancel_mid_run_keeps_solved_vectors(self, motivational_network):
        """Cancelling after the first cone still flushes its results."""
        cancel = threading.Event()
        seen: list[str] = []

        def cancel_after_first(event: dict) -> None:
            if event["event"] == "task-done":
                seen.append(event["task_id"])
                cancel.set()

        store = ResultStore()
        prepared = prepare_tels(motivational_network)
        with pytest.raises(SynthesisCancelled):
            run_synthesis(
                prepared,
                store=store,
                on_event=cancel_after_first,
                cancel=cancel,
            )
        assert len(seen) == 1  # stopped between cones, not at the end
        assert store.num_vectors > 0  # partial work banked

    def test_unset_flag_changes_nothing(self, motivational_network):
        cancel = threading.Event()
        prepared = prepare_tels(motivational_network)
        baseline = run_synthesis(prepare_tels(motivational_network))
        result = run_synthesis(prepared, cancel=cancel)
        from repro.io.thblif import to_thblif

        assert to_thblif(result.network) == to_thblif(baseline.network)
