"""Distributed synthesis: byte-identity, worker death, graceful degradation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.benchgen.paper_examples import MOTIVATIONAL_BLIF
from repro.core.synthesis import SynthesisOptions
from repro.engine.scheduler import run_synthesis
from repro.io.blif import parse_blif
from repro.io.thblif import to_thblif
from repro.network.scripts import prepare_tels
from repro.serve.app import ServeApp
from repro.serve.broker import WorkClient
from repro.serve.transport import HttpTransport
from repro.serve.worker import start_worker_thread

MULTI_CONE_BLIF = """\
.model fanout
.inputs a b c d
.outputs f g
.names a b x
11 1
.names c d y
00 1
.names x y f
1- 1
-1 1
.names x c g
10 1
.end
"""


def synth(blif: str, distribute: str | None = None, **kwargs):
    prepared = prepare_tels(parse_blif(blif))
    return run_synthesis(
        prepared, SynthesisOptions(), distribute=distribute, **kwargs
    )


@pytest.fixture
def daemon():
    app = ServeApp(port=0)
    app.start_background()
    try:
        yield app
    finally:
        app.shutdown()


def stop_workers(*pairs):
    for thread, stop in pairs:
        stop.set()
    for thread, _stop in pairs:
        thread.join(timeout=5.0)


class TestDistributedIdentity:
    def test_remote_run_matches_serial_byte_for_byte(self, daemon):
        serial = synth(MULTI_CONE_BLIF)
        w1 = start_worker_thread(daemon.url, worker_id="wA")
        w2 = start_worker_thread(daemon.url, worker_id="wB")
        try:
            remote = synth(MULTI_CONE_BLIF, distribute=daemon.url)
        finally:
            stop_workers(w1, w2)
        assert to_thblif(remote.network) == to_thblif(serial.network)
        assert remote.trace.backend == "remote"
        assert remote.trace.remote_workers >= 1
        assert remote.trace.remote_fallback_tasks == 0
        # The distributed run shares solves through the network cache tier.
        counters = daemon.manager.stats()["network_cache"]
        assert counters["installs"] >= 1

    def test_remote_run_under_network_chaos_stays_identical(
        self, daemon, monkeypatch
    ):
        serial = synth(MOTIVATIONAL_BLIF)
        monkeypatch.setenv(
            "TELS_CHAOS",
            "net-latency=0.2,net-dup=0.4,net-disconnect=0.1,"
            "net-corrupt=0.3:5",
        )
        worker = start_worker_thread(daemon.url, worker_id="chaotic")
        try:
            remote = synth(MOTIVATIONAL_BLIF, distribute=daemon.url)
        finally:
            stop_workers(worker)
        assert to_thblif(remote.network) == to_thblif(serial.network)
        # Duplicate deliveries (net-dup) are absorbed, never double-applied.
        assert daemon.manager.broker.duplicate_results >= 0


class TestWorkerDeath:
    def test_dead_worker_lease_expires_and_survivor_finishes(self, daemon):
        """A worker claiming cones then going silent forfeits them."""
        daemon.manager.broker.lease_s = 0.4
        daemon.manager.broker.worker_timeout_s = 0.8
        serial = synth(MULTI_CONE_BLIF)

        client = WorkClient(HttpTransport(daemon.url))
        rogue_claimed = threading.Event()

        def rogue():
            # Claim whatever shows up first, then die without a word:
            # no heartbeat, no results — exactly a SIGKILLed worker.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                claim = client.claim("rogue", 16)
                if claim.get("tasks"):
                    rogue_claimed.set()
                    return
                time.sleep(0.02)

        threading.Thread(target=rogue, daemon=True).start()
        survivor_handle = []

        def start_survivor():
            rogue_claimed.wait(timeout=10.0)
            survivor_handle.append(
                start_worker_thread(daemon.url, worker_id="survivor")
            )

        threading.Thread(target=start_survivor, daemon=True).start()
        try:
            remote = synth(MULTI_CONE_BLIF, distribute=daemon.url)
        finally:
            if survivor_handle:
                stop_workers(survivor_handle[0])
        assert rogue_claimed.is_set()
        assert to_thblif(remote.network) == to_thblif(serial.network)
        assert remote.trace.lease_expirations >= 1
        assert remote.trace.requeues >= 1
        assert daemon.manager.broker.lease_expirations >= 1


class TestGracefulDegradation:
    def test_total_worker_loss_falls_back_to_local(self, daemon, monkeypatch):
        import repro.engine.remote as remote_mod

        monkeypatch.setattr(remote_mod, "DEFAULT_WORKER_WAIT_S", 0.3)
        serial = synth(MULTI_CONE_BLIF)
        remote = synth(MULTI_CONE_BLIF, distribute=daemon.url)  # no workers
        assert to_thblif(remote.network) == to_thblif(serial.network)
        assert remote.trace.remote_fallback_tasks >= 1
        assert "no live workers" in remote.trace.remote_fallback_reason
        assert any(
            line.startswith("remote:")
            for line in remote.trace.summary_lines()
        )

    def test_unreachable_daemon_falls_back_at_startup(self):
        serial = synth(MULTI_CONE_BLIF)
        remote = synth(MULTI_CONE_BLIF, distribute="http://127.0.0.1:9")
        assert to_thblif(remote.network) == to_thblif(serial.network)
        assert "unreachable at startup" in remote.trace.remote_fallback_reason
        assert remote.trace.remote_fallback_tasks == remote.trace.num_tasks
