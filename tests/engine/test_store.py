"""The shared result store: tiers, journaling, merge, statistics."""

from __future__ import annotations

from repro.engine.store import CoverAnalysis, ResultStore, StoreStats


class TestVectorTier:
    def test_miss_then_hit(self):
        store = ResultStore()
        key = ("canon", 0, 1, None)
        assert store.is_miss(store.get_vector(key))
        store.put_vector(key, (1, 2, 3))
        assert store.get_vector(key) == (1, 2, 3)
        assert store.stats.vector_hits == 1
        assert store.stats.vector_misses == 1

    def test_none_is_a_cached_value(self):
        """`None` means "proved non-threshold" — distinct from a miss."""
        store = ResultStore()
        key = ("canon", 0, 1, None)
        store.put_vector(key, None)
        hit = store.get_vector(key)
        assert hit is None
        assert not store.is_miss(hit)

    def test_delta_settings_are_separate_keys(self):
        store = ResultStore()
        store.put_vector(("c", 0, 1, None), "a")
        store.put_vector(("c", 2, 1, None), "b")
        assert store.num_vectors == 2


class TestAnalysisTier:
    def test_analysis_round_trip(self):
        store = ResultStore()
        analysis = CoverAnalysis(
            positive="pos", flipped=(True, False), off_cubes=("off",)
        )
        key = ("canon", True)
        assert store.is_miss(store.get_analysis(key))
        store.put_analysis(key, analysis)
        assert store.get_analysis(key) is analysis
        assert store.stats.analysis_hits == 1


class TestJournal:
    def test_journal_captures_only_new_entries(self):
        store = ResultStore()
        store.put_vector(("old", 0, 1, None), 1)
        store.begin_journal()
        store.put_vector(("new", 0, 1, None), 2)
        delta = store.take_journal()
        assert ("new", 0, 1, None) in delta.vectors
        assert ("old", 0, 1, None) not in delta.vectors

    def test_merge_applies_delta(self):
        a = ResultStore()
        a.begin_journal()
        a.put_vector(("k", 0, 1, None), 7)
        delta = a.take_journal()
        b = ResultStore()
        b.merge(delta)
        assert b.get_vector(("k", 0, 1, None)) == 7

    def test_export_snapshot(self):
        store = ResultStore()
        store.put_vector(("k", 0, 1, None), 7)
        exported = store.export()
        fresh = ResultStore()
        fresh.merge(exported)
        assert fresh.num_vectors == 1


class TestStats:
    def test_since_subtracts_baseline(self):
        store = ResultStore()
        store.put_vector(("k", 0, 1, None), 1)
        store.get_vector(("k", 0, 1, None))
        before = store.stats.snapshot()
        store.get_vector(("k", 0, 1, None))
        store.get_vector(("absent", 0, 1, None))
        delta = store.stats.since(before)
        assert delta.vector_hits == 1
        assert delta.vector_misses == 1

    def test_hit_rates_handle_zero_traffic(self):
        stats = StoreStats()
        assert stats.vector_hit_rate == 0.0
        assert stats.analysis_hit_rate == 0.0
