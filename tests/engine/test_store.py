"""The shared result store: tiers, journaling, merge, statistics."""

from __future__ import annotations

from repro.engine.store import CoverAnalysis, ResultStore, StoreStats


class TestVectorTier:
    def test_miss_then_hit(self):
        store = ResultStore()
        key = ("canon", 0, 1, None)
        assert store.is_miss(store.get_vector(key))
        store.put_vector(key, (1, 2, 3))
        assert store.get_vector(key) == (1, 2, 3)
        assert store.stats.vector_hits == 1
        assert store.stats.vector_misses == 1

    def test_none_is_a_cached_value(self):
        """`None` means "proved non-threshold" — distinct from a miss."""
        store = ResultStore()
        key = ("canon", 0, 1, None)
        store.put_vector(key, None)
        hit = store.get_vector(key)
        assert hit is None
        assert not store.is_miss(hit)

    def test_delta_settings_are_separate_keys(self):
        store = ResultStore()
        store.put_vector(("c", 0, 1, None), "a")
        store.put_vector(("c", 2, 1, None), "b")
        assert store.num_vectors == 2


class TestAnalysisTier:
    def test_analysis_round_trip(self):
        store = ResultStore()
        analysis = CoverAnalysis(
            positive="pos", flipped=(True, False), off_cubes=("off",)
        )
        key = ("canon", True)
        assert store.is_miss(store.get_analysis(key))
        store.put_analysis(key, analysis)
        assert store.get_analysis(key) is analysis
        assert store.stats.analysis_hits == 1


class TestJournal:
    def test_journal_captures_only_new_entries(self):
        store = ResultStore()
        store.put_vector(("old", 0, 1, None), 1)
        store.begin_journal()
        store.put_vector(("new", 0, 1, None), 2)
        delta = store.take_journal()
        assert ("new", 0, 1, None) in delta.vectors
        assert ("old", 0, 1, None) not in delta.vectors

    def test_merge_applies_delta(self):
        a = ResultStore()
        a.begin_journal()
        a.put_vector(("k", 0, 1, None), 7)
        delta = a.take_journal()
        b = ResultStore()
        b.merge(delta)
        assert b.get_vector(("k", 0, 1, None)) == 7

    def test_export_snapshot(self):
        store = ResultStore()
        store.put_vector(("k", 0, 1, None), 7)
        exported = store.export()
        fresh = ResultStore()
        fresh.merge(exported)
        assert fresh.num_vectors == 1


class TestStats:
    def test_since_subtracts_baseline(self):
        store = ResultStore()
        store.put_vector(("k", 0, 1, None), 1)
        store.get_vector(("k", 0, 1, None))
        before = store.stats.snapshot()
        store.get_vector(("k", 0, 1, None))
        store.get_vector(("absent", 0, 1, None))
        delta = store.stats.since(before)
        assert delta.vector_hits == 1
        assert delta.vector_misses == 1

    def test_hit_rates_handle_zero_traffic(self):
        stats = StoreStats()
        assert stats.vector_hit_rate == 0.0
        assert stats.analysis_hit_rate == 0.0
        assert stats.persistent_hit_rate == 0.0

    def test_snapshot_is_isolated(self):
        stats = StoreStats(vector_hits=1, persistent_hits=2)
        frozen = stats.snapshot()
        stats.vector_hits += 5
        stats.transformed_hits += 1
        assert frozen.vector_hits == 1
        assert frozen.transformed_hits == 0

    def test_since_covers_every_counter(self):
        """before + since(before) == after, field by field — a new counter
        that misses the generic derivation would break this."""
        from dataclasses import fields

        before = StoreStats(vector_hits=1, analysis_misses=2)
        after = StoreStats(
            vector_hits=4,
            vector_misses=3,
            analysis_hits=2,
            analysis_misses=5,
            persistent_hits=7,
            persistent_misses=1,
            transformed_hits=6,
            transform_rejects=1,
        )
        delta = after.since(before)
        rebuilt = before.snapshot()
        rebuilt.add(delta)
        for f in fields(StoreStats):
            assert getattr(rebuilt, f.name) == getattr(after, f.name), f.name


class TestProcessPoolAccounting:
    """The scheduler's fold: per-task deltas from worker stores merge into
    the master's stats exactly once."""

    def _worker_round(self, store, hits, misses):
        """Simulate one task: `hits` served lookups, `misses` new solves."""
        before = store.stats.snapshot()
        for i in range(misses):
            key = (f"k{i}", 0, 1, None)
            assert store.is_miss(store.get_vector(key))
            store.put_vector(key, (i,))
        for i in range(hits):
            store.get_vector((f"k{i % max(misses, 1)}", 0, 1, None))
        return store.take_journal(), store.stats.since(before)

    def test_merged_deltas_sum_without_double_counting(self):
        master = ResultStore()
        # Master does some serial work of its own first.
        master.put_vector(("own", 0, 1, None), (0,))
        master.get_vector(("own", 0, 1, None))
        own = master.stats.snapshot()

        worker_a = ResultStore()
        worker_a.begin_journal()
        worker_b = ResultStore()
        worker_b.begin_journal()
        delta_a, stats_a = self._worker_round(worker_a, hits=3, misses=2)
        delta_b, stats_b = self._worker_round(worker_b, hits=1, misses=4)

        merge_before = master.stats.snapshot()
        master.merge(delta_a)
        master.merge(delta_b)
        # merge() installs entries without lookups: no counter traffic.
        assert master.stats.since(merge_before) == StoreStats()

        master.stats.add(stats_a)
        master.stats.add(stats_b)
        assert (
            master.stats.vector_hits
            == own.vector_hits + stats_a.vector_hits + stats_b.vector_hits
        )
        assert (
            master.stats.vector_misses
            == own.vector_misses
            + stats_a.vector_misses
            + stats_b.vector_misses
        )
        # Folding the same delta twice is the bug the scheduler guards
        # against (serial backend shares the master store): totals diverge.
        double = master.stats.snapshot()
        double.add(stats_a)
        assert double.vector_hits != master.stats.vector_hits
