"""Engine-level behaviour: determinism, parallel equivalence, store reuse.

The acceptance bar for the pass-based engine is that the process-pool
backend is *bit-identical* to the serial schedule — same gate names, same
fanins, same weight–threshold vectors, in the same order — and that every
synthesized network simulates equivalent to its source.
"""

from __future__ import annotations

import pytest

from repro.benchgen.paper_examples import motivational_network
from repro.benchgen.random_logic import random_logic_network
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.verify import verify_threshold_network
from repro.engine.cone import task_rng
from repro.engine.scheduler import run_synthesis
from repro.engine.store import ResultStore
from repro.engine.tasks import plan_initial_tasks, preserved_set
from repro.network.scripts import prepare_tels


def _gate_list(net):
    """The full observable identity of a synthesized network."""
    return [
        (g.name, g.inputs, g.weights, g.threshold, g.delta_on, g.delta_off)
        for g in net.gates()
    ]


def _random_circuits():
    return [
        random_logic_network(
            f"rand{seed}",
            num_inputs=8,
            num_outputs=3,
            num_nodes=14,
            seed=seed,
        )
        for seed in (11, 23, 47)
    ]


class TestTaskLayer:
    def test_one_initial_task_per_output_node(self):
        net = prepare_tels(motivational_network())
        tasks = plan_initial_tasks(net)
        roots = [t.root for t in tasks]
        assert roots == [o for o in net.outputs if net.has_node(o)]
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_preserved_set_contains_outputs(self):
        net = prepare_tels(motivational_network())
        preserved = preserved_set(net, preserve_sharing=True)
        for out in net.outputs:
            if net.has_node(out):
                assert out in preserved

    def test_task_rng_is_deterministic_and_per_task(self):
        a = task_rng(0, "z0")
        b = task_rng(0, "z0")
        c = task_rng(0, "z1")
        seq_a = [a.random() for _ in range(5)]
        assert seq_a == [b.random() for _ in range(5)]
        assert seq_a != [c.random() for _ in range(5)]


class TestSerialEngine:
    def test_motivational_network(self):
        net = prepare_tels(motivational_network())
        result = run_synthesis(net, SynthesisOptions(psi=4))
        assert verify_threshold_network(motivational_network(), result.network)
        assert result.trace.backend == "serial"
        assert len(result.trace.tasks) >= len(net.outputs)

    def test_trace_totals_match_report(self):
        net = prepare_tels(motivational_network())
        result = run_synthesis(net, SynthesisOptions(psi=4))
        assert result.report.nodes_processed == result.trace.total(
            "nodes_processed"
        )
        assert result.report.trace is result.trace

    def test_events_cover_every_task(self):
        net = prepare_tels(motivational_network())
        result = run_synthesis(net, SynthesisOptions(psi=4))
        for metrics in result.trace.tasks:
            phases = {e.phase for e in metrics.events()}
            assert "done" in phases

    def test_summary_formats(self):
        net = prepare_tels(motivational_network())
        result = run_synthesis(net, SynthesisOptions(psi=4))
        text = result.trace.format_summary()
        assert "engine:" in text
        assert "collapse" in text


class TestParallelDeterminism:
    """Serial and process-pool schedules must be bit-identical."""

    def test_motivational_example(self):
        source = motivational_network()
        net = prepare_tels(source)
        serial = run_synthesis(net, SynthesisOptions(psi=4), jobs=1)
        pooled = run_synthesis(net, SynthesisOptions(psi=4), jobs=2)
        assert _gate_list(serial.network) == _gate_list(pooled.network)
        assert pooled.trace.backend == "process"
        assert verify_threshold_network(source, pooled.network)

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_random_benchgen_circuits(self, index):
        source = _random_circuits()[index]
        net = prepare_tels(source)
        options = SynthesisOptions(psi=3, seed=5)
        serial = run_synthesis(net, options, jobs=1)
        pooled = run_synthesis(net, options, jobs=2)
        assert _gate_list(serial.network) == _gate_list(pooled.network)
        assert verify_threshold_network(source, serial.network)
        assert verify_threshold_network(source, pooled.network)

    def test_parallel_stats_match_serial(self):
        """Worker stat deltas must fold back into the parent checker."""
        net = prepare_tels(motivational_network())
        serial = run_synthesis(net, SynthesisOptions(psi=4), jobs=1)
        pooled = run_synthesis(net, SynthesisOptions(psi=4), jobs=2)
        assert (
            pooled.report.checker.stats.calls
            == serial.report.checker.stats.calls
        )


class TestSharedStore:
    def test_delta_sweep_reuses_analyses(self):
        """2nd+ sweep points must hit the delta-independent tier."""
        source = motivational_network()
        net = prepare_tels(source)
        store = ResultStore()
        for delta_on in (0, 1, 2):
            before = store.stats.snapshot()
            result = run_synthesis(
                net,
                SynthesisOptions(psi=4, delta_on=delta_on),
                store=store,
            )
            assert verify_threshold_network(source, result.network)
            spent = store.stats.since(before)
            if delta_on > 0:
                assert spent.analysis_hits > 0
                assert spent.analysis_misses == 0

    def test_same_point_twice_is_all_hits(self):
        net = prepare_tels(motivational_network())
        store = ResultStore()
        run_synthesis(net, SynthesisOptions(psi=4), store=store)
        before = store.stats.snapshot()
        run_synthesis(net, SynthesisOptions(psi=4), store=store)
        spent = store.stats.since(before)
        assert spent.vector_misses == 0
        assert spent.analysis_misses == 0

    def test_facade_passes_store_through(self):
        net = prepare_tels(motivational_network())
        store = ResultStore()
        synthesize_with_report(net, SynthesisOptions(psi=4), store=store)
        assert len(store) > 0


class TestFacade:
    def test_report_carries_trace_and_checker(self):
        net = prepare_tels(motivational_network())
        _, report = synthesize_with_report(net, SynthesisOptions(psi=4))
        assert report.trace is not None
        assert report.checker is not None
        assert report.checker.stats.calls > 0
