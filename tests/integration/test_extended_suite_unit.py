"""Unit-level tests for the suite-sweep harness (tiny circuit subset)."""

import pytest

from repro.experiments.extended_suite import (
    SuiteSummary,
    format_suite,
    run_suite,
)


@pytest.fixture(scope="module")
def tiny_summary():
    return run_suite(["majority", "z4ml", "tcon"], psi=3, verify_vectors=128)


class TestRunSuite:
    def test_rows_cover_names(self, tiny_summary):
        assert [r.name for r in tiny_summary.rows] == [
            "majority",
            "z4ml",
            "tcon",
        ]
        assert all(r.verified for r in tiny_summary.rows)

    def test_reduction_accounting(self, tiny_summary):
        for row in tiny_summary.rows:
            expected = (
                100.0
                * (row.one_to_one.gates - row.tels.gates)
                / row.one_to_one.gates
            )
            assert abs(row.reduction_percent - expected) < 1e-9

    def test_win_tie_loss_partition(self, tiny_summary):
        s = tiny_summary
        assert s.wins + s.ties + s.losses == len(s.rows)

    def test_best_and_worst(self, tiny_summary):
        best, worst = tiny_summary.best(), tiny_summary.worst()
        assert best.reduction_percent >= worst.reduction_percent

    def test_level_means(self, tiny_summary):
        assert tiny_summary.mean_tels_levels > 0
        assert tiny_summary.mean_one_to_one_levels > 0

    def test_format(self, tiny_summary):
        text = format_suite(tiny_summary)
        assert "majority" in text
        assert "mean reduction" in text


class TestEmptySummary:
    def test_zero_rows(self):
        empty = SuiteSummary(())
        assert empty.mean_reduction_percent == 0.0
        assert empty.wins == empty.ties == empty.losses == 0
        assert empty.best() is None and empty.worst() is None
