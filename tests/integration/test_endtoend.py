"""End-to-end integration: full flows over the benchmark suite (E1/E5).

Runs the complete pipeline — benchmark generation, BLIF round trip, both
synthesis flows, metric extraction, functional verification — on the small
benchmarks.  The heavyweight i10 run lives behind the ``slow`` marker.
"""

import pytest

from repro.benchgen.mcnc import benchmark_names, build_benchmark
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.verify import verify_threshold_network
from repro.experiments.flows import run_flows
from repro.io.blif import parse_blif, to_blif
from repro.network.scripts import prepare_tels

SMALL = [n for n in benchmark_names() if n not in ("i10", "term1", "x1")]


class TestFullFlow:
    @pytest.mark.parametrize("name", SMALL)
    def test_both_flows_verified(self, name):
        flow = run_flows(name, psi=3, verify_vectors=512)
        assert flow.verified
        assert flow.tels_stats.gates > 0
        assert flow.one_to_one_stats.gates > 0

    @pytest.mark.parametrize("name", ["cm85a", "cmb", "pm1"])
    def test_flow_through_blif_files(self, name, tmp_path):
        source = build_benchmark(name)
        path = tmp_path / f"{name}.blif"
        path.write_text(to_blif(source))
        reloaded = parse_blif(path.read_text())
        th = synthesize(prepare_tels(reloaded), SynthesisOptions(psi=3))
        assert verify_threshold_network(source, th, vectors=512)

    def test_tels_beats_one_to_one_on_suite(self):
        """The paper's headline: substantial average gate reduction."""
        total_before = total_after = 0
        for name in SMALL:
            flow = run_flows(name, psi=3)
            total_before += flow.one_to_one_stats.gates
            total_after += flow.tels_stats.gates
        reduction = 100.0 * (total_before - total_after) / total_before
        assert reduction > 20.0, reduction

    def test_better_of_two_guarantee(self):
        """TELS-or-one-to-one selection never exceeds one-to-one gates."""
        for name in SMALL:
            flow = run_flows(name, psi=3)
            best = flow.best
            assert best.num_gates <= flow.one_to_one_stats.gates

    @pytest.mark.parametrize("psi", [3, 5])
    def test_fanin_restriction_across_suite(self, psi):
        for name in ("cm152a", "cmb", "tcon"):
            flow = run_flows(name, psi=psi)
            assert flow.tels.max_fanin() <= psi
            assert flow.one_to_one.max_fanin() <= psi

    @pytest.mark.slow
    def test_i10_flow(self):
        flow = run_flows("i10", psi=3, verify_vectors=256)
        assert flow.verified
        assert flow.tels_stats.gates < flow.one_to_one_stats.gates


class TestDeltaConfigurations:
    @pytest.mark.parametrize("delta_on", [0, 1, 2])
    def test_robust_synthesis_verified(self, delta_on):
        flow = run_flows("cmb", psi=3, delta_on=delta_on)
        assert flow.verified

    def test_area_grows_with_delta_on(self):
        areas = [
            run_flows("cm85a", psi=3, delta_on=d).tels_stats.area
            for d in (0, 2)
        ]
        assert areas[1] >= areas[0]
