"""Tests for the experiment harnesses (fast subsets of E1-E4)."""

from repro.experiments.fig10 import format_fig10, run_fig10
from repro.experiments.fig11 import format_fig11, run_fig11
from repro.experiments.fig12 import format_fig12, run_fig12
from repro.experiments.flows import run_flows
from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1

FAST = ["cm152a", "cmb", "tcon"]


class TestFlows:
    def test_flow_result_cached(self):
        a = run_flows("cmb", psi=3)
        b = run_flows("cmb", psi=3)
        assert a is b

    def test_best_network_selection(self):
        flow = run_flows("tcon", psi=3)
        assert flow.best.num_gates == min(
            flow.tels_stats.gates, flow.one_to_one_stats.gates
        )

    def test_gate_reduction_sign(self):
        flow = run_flows("cm152a", psi=3)
        assert flow.gate_reduction_percent > 0


class TestTable1:
    def test_rows_and_formatting(self):
        rows = run_table1(FAST, psi=3)
        assert [r.name for r in rows] == FAST
        text = format_table1(rows)
        for name in FAST:
            assert name in text
        assert "TOTAL" in text

    def test_paper_reference_present_for_all_benchmarks(self):
        assert set(PAPER_TABLE1) == {
            "cm152a",
            "cordic",
            "cm85a",
            "comp",
            "cmb",
            "term1",
            "pm1",
            "x1",
            "i10",
            "tcon",
        }

    def test_paper_reduction_well_known_values(self):
        rows = run_table1(["cm152a"], psi=3)
        # Paper: 28 -> 13 gates = 53.6% reduction.
        assert abs(rows[0].paper_reduction_percent - 53.57) < 0.1


class TestFig10:
    def test_sweep_shape(self):
        points = run_fig10("cmb", fanins=(3, 4, 5))
        assert [p.psi for p in points] == [3, 4, 5]
        # One-to-one gate count must not increase when fanin is relaxed.
        gates = [p.one_to_one_gates for p in points]
        assert gates[0] >= gates[-1]
        assert "psi" in format_fig10(points, "cmb")


class TestFig11:
    def test_failure_rates_bounded_and_monotone_in_delta(self):
        points = run_fig11(
            names=FAST,
            delta_ons=(0, 2),
            multipliers=(0.4, 1.2),
            trials=2,
            vectors=64,
        )
        assert all(0.0 <= p.failure_rate_percent <= 100.0 for p in points)
        by_key = {(p.delta_on, p.v): p.failure_rate_percent for p in points}
        # More tolerance, same variation: no more failures (statistically
        # this holds at these sample sizes because delta dominates).
        assert by_key[(2, 1.2)] <= by_key[(0, 1.2)]
        text = format_fig11(points)
        assert "failure rate" in text


class TestFig12:
    def test_area_failure_tradeoff(self):
        points = run_fig12(
            names=FAST, delta_ons=(0, 2), v=0.8, trials=2, vectors=64
        )
        assert points[0].area_increase_percent == 0.0
        assert points[1].total_area >= points[0].total_area
        assert points[1].failure_rate_percent <= points[0].failure_rate_percent
        assert "delta_on" in format_fig12(points)
