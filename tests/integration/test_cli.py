"""Integration tests for the ``tels`` command line."""

import pytest

from repro.cli import main


@pytest.fixture
def blif_file(tmp_path):
    path = tmp_path / "cmb.blif"
    assert main(["bench", "cmb", "-o", str(path)]) == 0
    return path


class TestCommands:
    def test_stats(self, blif_file, capsys):
        assert main(["stats", str(blif_file)]) == 0
        out = capsys.readouterr().out
        assert "inputs:   16" in out
        assert "outputs:  4" in out

    def test_synth_and_print(self, blif_file, tmp_path, capsys):
        th_path = tmp_path / "cmb.th"
        assert main(["synth", str(blif_file), "-o", str(th_path)]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert th_path.exists()
        assert main(["print-th", str(th_path)]) == 0
        out = capsys.readouterr().out
        assert "<" in out and ";" in out  # weight-threshold vectors

    def test_synth_with_options(self, blif_file, capsys):
        assert main(
            ["synth", str(blif_file), "--psi", "5", "--delta-on", "1"]
        ) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_map(self, blif_file, capsys):
        assert main(["map", str(blif_file)]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_simulate(self, blif_file, capsys):
        assert main(["simulate", str(blif_file)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_to_stdout(self, capsys):
        assert main(["bench", "tcon"]) == 0
        out = capsys.readouterr().out
        assert ".model tcon" in out

    def test_enumerate(self, capsys):
        assert main(["enumerate", "3"]) == 0
        assert "5 threshold / 5" in capsys.readouterr().out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--benchmarks", "cmb", "tcon"]) == 0
        out = capsys.readouterr().out
        assert "cmb" in out and "tcon" in out and "TOTAL" in out

    def test_fig10_fast_benchmark(self, capsys):
        assert main(["fig10", "--benchmark", "cmb"]) == 0
        out = capsys.readouterr().out
        assert "psi" in out and "TELS" in out

    def test_analyze_blif(self, blif_file, capsys):
        assert main(["analyze", str(blif_file)]) == 0
        out = capsys.readouterr().out
        assert "fanin histogram" in out and "critical path" in out

    def test_analyze_thblif(self, blif_file, tmp_path, capsys):
        th_path = tmp_path / "cmb.th"
        main(["synth", str(blif_file), "-o", str(th_path)])
        capsys.readouterr()
        assert main(["analyze", str(th_path)]) == 0
        assert "gates:" in capsys.readouterr().out

    def test_verilog_export(self, blif_file, tmp_path, capsys):
        v_path = tmp_path / "cmb.v"
        assert main(["verilog", str(blif_file), "-o", str(v_path)]) == 0
        text = v_path.read_text()
        assert "module" in text and "ltg" in text

    def test_bench_extended_name(self, capsys):
        assert main(["bench", "majority"]) == 0
        assert ".model majority" in capsys.readouterr().out

    def test_synth_prints_check_stats_and_trace(self, blif_file, capsys):
        assert main(["synth", str(blif_file)]) == 0
        out = capsys.readouterr().out
        assert "checks:" in out and "cache hits" in out and "ILPs" in out
        assert "engine:" in out and "backend=serial" in out
        assert "passes: collapse" in out
        assert "slowest tasks:" in out

    def test_synth_jobs_flag(self, blif_file, capsys):
        assert main(["synth", str(blif_file), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert "backend=process jobs=2" in out


class TestCache:
    def test_synth_cold_then_warm(self, blif_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["synth", str(blif_file), "--cache", cache]) == 0
        cold = capsys.readouterr().out
        assert f"cache: {cache} holds" in cold
        assert main(["synth", str(blif_file), "--cache", cache]) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm
        assert "0 rejected" in warm
        # Warm run served at least one lookup from disk.
        hits = int(warm.split("this run: ")[1].split(" hits")[0])
        assert hits > 0

    def test_cache_stats_and_clear(self, blif_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["synth", str(blif_file), "--cache", cache])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "solved:" in out
        assert main(["cache", "clear", "--cache", cache]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", cache]) == 0
        assert "entries:  0" in capsys.readouterr().out

    def test_cache_warm_command(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["cache", "warm", "cm85a", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "warmed cm85a" in out
        assert "entries on disk" in out

    def test_cache_requires_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("TELS_CACHE", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "TELS_CACHE" in capsys.readouterr().err

    def test_env_var_enables_and_no_cache_overrides(
        self, blif_file, tmp_path, capsys, monkeypatch
    ):
        cache = str(tmp_path / "envcache")
        monkeypatch.setenv("TELS_CACHE", cache)
        assert main(["synth", str(blif_file)]) == 0
        assert f"cache: {cache}" in capsys.readouterr().out
        assert main(["synth", str(blif_file), "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().out


class TestSweep:
    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--benchmarks", "cm152a", "--deltas", "0", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "d_on" in out
        assert "analyses reused after the first sweep point" in out


class TestResilienceFlags:
    def test_deadline_degrades_with_warning_but_exit_zero(
        self, blif_file, capsys
    ):
        assert main(
            ["synth", str(blif_file), "--deadline-per-cone", "0.000001"]
        ) == 0
        captured = capsys.readouterr()
        assert "verified=True" in captured.out
        assert "degraded to one-to-one mapping" in captured.err

    def test_strict_synthesis_turns_degradation_into_exit_2(
        self, blif_file, capsys
    ):
        assert main(
            [
                "synth",
                str(blif_file),
                "--deadline-per-cone",
                "0.000001",
                "--strict-synthesis",
            ]
        ) == 2
        assert "strict synthesis" in capsys.readouterr().err

    def test_total_deadline_flag(self, blif_file, capsys):
        assert main(
            ["synth", str(blif_file), "--deadline-total", "0.000001"]
        ) == 0
        captured = capsys.readouterr()
        assert "verified=True" in captured.out
        assert "total-deadline" in captured.err

    def test_max_attempts_flag_parses(self, blif_file, capsys):
        assert main(
            ["synth", str(blif_file), "--max-attempts", "5"]
        ) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_synth_under_chaos_env(self, blif_file, capsys, monkeypatch):
        monkeypatch.setenv("TELS_CHAOS", "solver=0.5,cache=0.2:1")
        assert main(["synth", str(blif_file)]) == 0
        captured = capsys.readouterr()
        assert "verified=True" in captured.out
        assert "degraded" not in captured.err

    def test_malformed_chaos_spec_is_a_usage_error(
        self, blif_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("TELS_CHAOS", "bogus=1.0")
        assert main(["synth", str(blif_file)]) == 2
        assert "chaos" in capsys.readouterr().err.lower()
