"""Tests for the experiment flow cache and FlowResult invariants."""

from repro.experiments.flows import clear_flow_cache, run_flows


class TestFlowCache:
    def test_clear_forces_recompute(self):
        a = run_flows("cmb", psi=3)
        clear_flow_cache()
        b = run_flows("cmb", psi=3)
        assert a is not b
        # Determinism: same statistics either way.
        assert a.tels_stats == b.tels_stats
        assert a.one_to_one_stats == b.one_to_one_stats

    def test_different_configs_are_distinct_entries(self):
        a = run_flows("cmb", psi=3)
        b = run_flows("cmb", psi=4)
        c = run_flows("cmb", psi=3, delta_on=1)
        assert a is not b and a is not c

    def test_flow_result_fields(self):
        flow = run_flows("tcon", psi=3)
        assert flow.name == "tcon"
        assert flow.psi == 3
        assert flow.source.name == "tcon"
        assert flow.tels.num_gates == flow.tels_stats.gates
        assert flow.one_to_one.num_gates == flow.one_to_one_stats.gates
