"""Smoke tests for the EXPERIMENTS.md report generator sections."""

from repro.experiments.report import (
    _motivational_section,
    _worked_examples_section,
)


class TestSections:
    def test_worked_examples_match_paper(self):
        text = _worked_examples_section()
        assert "<2, -1, -1; 1>" in text
        assert "<1, -1, 2; 1>" in text
        assert "not threshold" in text

    def test_motivational_section_reports_verification(self):
        text = _motivational_section()
        assert "verified = True" in text
        assert "5 gates and 3 levels" in text
