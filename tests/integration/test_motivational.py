"""Integration test: the paper's Section III motivational example (E7).

The Boolean network of Fig. 2(a) has 7 gates and 5 levels.  The paper's
synthesized threshold network (Fig. 2(b)) has 5 gates and 3 levels.  Our
implementation must produce an equivalent threshold network at least that
good (our collapsing finds an even tighter packing).
"""

from repro.core.area import boolean_stats, network_stats
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.verify import verify_threshold_network


class TestMotivationalExample:
    def test_source_network_shape(self, motivational_network):
        stats = boolean_stats(motivational_network)
        assert stats.gates == 7
        assert stats.levels == 5

    def test_synthesis_beats_paper_numbers(self, motivational_network):
        th = synthesize(motivational_network, SynthesisOptions(psi=4))
        stats = network_stats(th)
        assert stats.gates <= 5  # paper achieves 5
        assert stats.levels <= 3  # paper achieves 3
        assert verify_threshold_network(motivational_network, th)

    def test_gate_count_reduction_at_least_28_percent(
        self, motivational_network
    ):
        th = synthesize(motivational_network, SynthesisOptions(psi=4))
        before = boolean_stats(motivational_network).gates
        after = network_stats(th).gates
        assert 100.0 * (before - after) / before >= 28.6

    def test_fanin_restriction_respected(self, motivational_network):
        for psi in (3, 4, 5):
            th = synthesize(motivational_network, SynthesisOptions(psi=psi))
            assert th.max_fanin() <= psi
            assert verify_threshold_network(motivational_network, th)

    def test_n4_maps_to_and_gate(self, motivational_network):
        # n4 = x1 x2 x3 is shared in Fig. 2(b); at psi=4 with the default
        # sharing preservation it appears as a 3-input AND gate.
        th = synthesize(motivational_network, SynthesisOptions(psi=4))
        names = {g.name for g in th.gates()}
        assert "f" in names
