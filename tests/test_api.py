"""Public API surface tests."""

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_path(self):
        """The README quickstart, as a test."""
        blif = (
            ".model demo\n.inputs a b c\n.outputs f\n"
            ".names a b c f\n11- 1\n1-1 1\n-11 1\n.end\n"
        )
        network = repro.parse_blif(blif)
        prepared = repro.prepare_tels(network)
        threshold_net = repro.synthesize(
            prepared, repro.SynthesisOptions(psi=3)
        )
        assert repro.verify_threshold_network(network, threshold_net)
        # Majority of three: a single gate <1,1,1;2>.
        stats = repro.network_stats(threshold_net)
        assert stats.gates == 1

    def test_errors_hierarchy(self):
        assert issubclass(repro.BlifError, repro.ReproError)
        assert issubclass(repro.SynthesisError, repro.ReproError)
        assert issubclass(repro.IlpError, repro.ReproError)
        assert issubclass(repro.CoverError, repro.ReproError)
        assert issubclass(repro.NetworkError, repro.ReproError)
        assert issubclass(repro.PlaError, repro.ReproError)

    def test_is_threshold_function_facade(self):
        f = repro.BooleanFunction.parse("a b + a c")
        vector = repro.is_threshold_function(f)
        assert vector is not None
        assert vector.area >= 4
