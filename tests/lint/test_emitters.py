"""Emitter tests: text layout, JSON payload, and SARIF 2.1.0 validity.

The SARIF output is validated with ``jsonschema`` against an embedded
subset of the official 2.1.0 schema — the structural skeleton code-scanning
uploaders actually require (runs / tool.driver.rules / results with ruleId,
level, message, locations), with ``additionalProperties`` left open exactly
where the full schema leaves it open.
"""

from __future__ import annotations

import json

import pytest

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.emitters import (
    FORMATTERS,
    format_json,
    format_sarif,
    format_text,
    render,
    to_json,
    to_sarif,
)
from repro.lint.rules import registered_rules

jsonschema = pytest.importorskip("jsonschema")


#: The load-bearing subset of the SARIF 2.1.0 schema: every constraint the
#: full schema places on the fields we emit, with unconstrained regions
#: left open just as the official schema does.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            },
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "name": {
                                                            "type": "string"
                                                        },
                                                        "kind": {
                                                            "type": "string"
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                },
            },
        },
    },
}


def sample_report(clean: bool = False) -> LintReport:
    diags = ()
    if not clean:
        diags = (
            Diagnostic(
                rule_id="TLS002",
                severity=Severity.ERROR,
                message="gate 'y' reads undefined signal 'ghost'",
                category="structure",
                gate="y",
                net="ghost",
                hint="add the driver",
                file="bad.th",
                line=4,
            ),
            Diagnostic(
                rule_id="TLS004",
                severity=Severity.WARNING,
                message="gate 'dead' feeds no primary output",
                category="structure",
                gate="dead",
            ),
            Diagnostic(
                rule_id="TLM104",
                severity=Severity.NOTE,
                message="gate 'y' claims delta_off=0",
                category="semantic",
                gate="y",
            ),
        )
    return LintReport(
        network_name="sample",
        diagnostics=diags,
        rules_run=("TLS002", "TLS004", "TLM104"),
        gates_checked=2,
        wall_s=0.001,
        file="bad.th" if not clean else None,
    )


class TestText:
    def test_clean_summary(self):
        text = format_text(sample_report(clean=True))
        assert "sample: clean" in text
        assert "2 gates" in text

    def test_findings_one_line_each(self):
        text = format_text(sample_report())
        lines = text.splitlines()
        assert len(lines) == 4  # 3 findings + summary
        assert lines[0].startswith("bad.th:4:y: error: [TLS002]")
        assert "(hint: add the driver)" in lines[0]
        assert "1 error(s), 1 warning(s), 1 note(s)" in lines[-1]


class TestJson:
    def test_payload_roundtrips(self):
        payload = json.loads(format_json(sample_report()))
        assert payload["network"] == "sample"
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert payload["notes"] == 1
        assert payload["clean"] is False
        assert len(payload["diagnostics"]) == 3
        first = payload["diagnostics"][0]
        assert first["rule"] == "TLS002"
        assert first["line"] == 4

    def test_clean_payload_omits_null_fields(self):
        payload = to_json(sample_report(clean=True))
        assert payload["clean"] is True
        assert payload["diagnostics"] == []


class TestSarif:
    def test_validates_against_subset_schema(self):
        doc = to_sarif(sample_report())
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)

    def test_clean_log_validates_too(self):
        jsonschema.validate(
            to_sarif(sample_report(clean=True)), SARIF_SUBSET_SCHEMA
        )

    def test_rule_catalog_covers_registry(self):
        doc = to_sarif(sample_report(clean=True))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} == {
            s.rule_id for s in registered_rules()
        }

    def test_rule_index_points_into_catalog(self):
        doc = to_sarif(sample_report())
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_levels_map_severities(self):
        doc = to_sarif(sample_report())
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_locations_carry_file_line_and_gate(self):
        doc = to_sarif(sample_report())
        loc = doc["runs"][0]["results"][0]["locations"][0]
        assert loc["physicalLocation"]["artifactLocation"]["uri"] == "bad.th"
        assert loc["physicalLocation"]["region"]["startLine"] == 4
        assert loc["logicalLocations"][0]["name"] == "y"

    def test_serialized_form_is_json(self):
        doc = json.loads(format_sarif(sample_report()))
        assert doc["version"] == "2.1.0"


class TestRender:
    def test_dispatch(self):
        report = sample_report(clean=True)
        for fmt in FORMATTERS:
            assert render(report, fmt)

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            render(sample_report(), "xml")
