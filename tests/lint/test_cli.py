"""``tels lint`` end-to-end: corrupted files, formats, and exit codes.

Exit-code convention under test (see README):

* 0 — file parsed and linted clean;
* 1 — lint violations (errors; any finding under ``--strict``);
* 2 — usage or parse failure (unreadable file, malformed ``.thblif``).
"""

from __future__ import annotations

import json

from repro.cli import main

CLEAN = """.model clean
.inputs a b
.outputs y
.thgate a b y
.vector 1 1 2
.delta 0 1
.end
"""

BAD_WEIGHT_COUNT = """.model bad
.inputs a b
.outputs y
.thgate a b y
.vector 1 1
.end
"""

PSI_OVERFLOW = """.model psi
.inputs a b c d
.outputs y
.thgate a b c d y
.vector 1 1 1 1 4
.end
"""

CYCLE = """.model cyc
.inputs a
.outputs y
.thgate a g2 y
.vector 1 1 2
.thgate y g2
.vector 1 1
.end
"""

STALE_DELTA = """.model stale
.inputs a b
.outputs y
.thgate a b y
.vector 1 1 2
.delta 3 1
.end
"""


def write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return str(p)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        rc = main(["lint", write(tmp_path, "c.th", CLEAN)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path):
        assert main(["lint", write(tmp_path, "s.th", STALE_DELTA)]) == 1

    def test_parse_error_exits_two(self, tmp_path):
        assert main(["lint", write(tmp_path, "b.th", BAD_WEIGHT_COUNT)]) == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "nope.th")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_no_file_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "required" in capsys.readouterr().err

    def test_strict_escalates_notes(self, tmp_path):
        # An unused input is a note: clean normally, nonzero under strict.
        noted = CLEAN.replace(".inputs a b", ".inputs a b unused")
        path = write(tmp_path, "n.th", noted)
        assert main(["lint", path]) == 0
        assert main(["lint", path, "--strict"]) == 1


class TestCorruptedFiles:
    """Each hand-corrupted defect reports its own rule ID."""

    def test_bad_weight_count_is_tlp201(self, tmp_path, capsys):
        rc = main(
            ["lint", write(tmp_path, "b.th", BAD_WEIGHT_COUNT)]
        )
        out = capsys.readouterr().out
        assert rc == 2
        assert "[TLP201]" in out
        assert ":5:" in out  # the .vector line

    def test_psi_overflow_is_tls005(self, tmp_path, capsys):
        rc = main(["lint", write(tmp_path, "p.th", PSI_OVERFLOW), "--psi", "3"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[TLS005]" in out

    def test_cycle_is_tls001(self, tmp_path, capsys):
        rc = main(["lint", write(tmp_path, "c.th", CYCLE)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[TLS001]" in out

    def test_stale_delta_is_tlm101(self, tmp_path, capsys):
        rc = main(["lint", write(tmp_path, "s.th", STALE_DELTA)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[TLM101]" in out
        assert "delta_on=3" in out


class TestFormats:
    def test_json_format(self, tmp_path, capsys):
        rc = main(
            ["lint", write(tmp_path, "s.th", STALE_DELTA), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["rule"] == "TLM101"

    def test_sarif_format_to_file(self, tmp_path):
        out = tmp_path / "log.sarif"
        rc = main(
            [
                "lint",
                write(tmp_path, "s.th", STALE_DELTA),
                "--format",
                "sarif",
                "-o",
                str(out),
            ]
        )
        assert rc == 1
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "TLM101"

    def test_parse_error_honors_format(self, tmp_path, capsys):
        rc = main(
            [
                "lint",
                write(tmp_path, "b.th", BAD_WEIGHT_COUNT),
                "--format",
                "sarif",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert doc["runs"][0]["results"][0]["ruleId"] == "TLP201"

    def test_rules_filter(self, tmp_path, capsys):
        # Selecting only structural rules hides the TLM101 finding.
        rc = main(
            ["lint", write(tmp_path, "s.th", STALE_DELTA), "--rules", "TLS"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "TLM101" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "TLS001" in out and "TLM101" in out and "TLP201" in out


class TestSynthIntegration:
    def test_synth_output_lints_clean(self, tmp_path, capsys):
        from repro.benchgen.extended import build_extended_benchmark
        from repro.io.blif import write_blif

        blif = tmp_path / "cm152a.blif"
        write_blif(build_extended_benchmark("cm152a"), blif)
        th = tmp_path / "cm152a.th"
        assert main(["synth", str(blif), "-o", str(th)]) == 0
        capsys.readouterr()
        assert main(["lint", str(th), "--psi", "3"]) == 0

    def test_no_lint_flag_skips_post_pass(self, tmp_path, capsys):
        from repro.benchgen.extended import build_extended_benchmark
        from repro.io.blif import write_blif

        blif = tmp_path / "cm152a.blif"
        write_blif(build_extended_benchmark("cm152a"), blif)
        assert main(["synth", str(blif), "--no-lint"]) == 0
        out = capsys.readouterr().out
        assert "lint:" not in out
