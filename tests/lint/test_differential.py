"""Differential acceptance: synthesized networks must lint clean.

Mirrors ``tests/cache/test_differential.py``'s population — random logic
networks plus benchmark stand-ins, serial and parallel, cached and not —
and asserts the lint post-pass finds zero violations on every one.  A
violation here means the synthesizer emitted something its own static
verifier rejects, which is a bug in one or the other; either way it must
not ship silently.
"""

from __future__ import annotations

import pytest

from repro.benchgen.random_logic import random_logic_network
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.lint.diagnostics import LintOptions
from repro.lint.runner import run_lint


def assert_lint_clean(report, network, source, psi):
    """The engine post-pass and a fresh full-rule run must both be clean."""
    assert report.lint is not None
    assert report.lint.violations == 0, report.lint.by_rule()
    fresh = run_lint(network, LintOptions(psi=psi), source=source)
    assert fresh.violations == 0, fresh.by_rule()
    assert "TLM105" in fresh.rules_run  # equivalence rule actually ran


class TestRandomNetworks:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_networks_lint_clean(self, seed):
        source = random_logic_network(
            f"lintrand{seed}",
            num_inputs=6,
            num_outputs=2,
            num_nodes=10,
            seed=seed,
        )
        options = SynthesisOptions(psi=3, seed=seed)
        network, report = synthesize_with_report(source, options)
        assert_lint_clean(report, network, source, psi=3)

    def test_parallel_run_lints_clean(self):
        source = random_logic_network(
            "lintpool", num_inputs=6, num_outputs=3, num_nodes=12, seed=99
        )
        options = SynthesisOptions(psi=3, seed=0)
        network, report = synthesize_with_report(source, options, jobs=2)
        assert_lint_clean(report, network, source, psi=3)
        # The per-cone metrics carry the same invariant.
        assert report.trace is not None
        assert report.trace.total("lint_violations") == 0

    def test_cache_warm_run_lints_clean(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        source = random_logic_network(
            "lintwarm", num_inputs=6, num_outputs=2, num_nodes=12, seed=7
        )
        options = SynthesisOptions(psi=3, seed=0, delta_on=1, delta_off=1)
        synthesize_with_report(source, options, cache_dir=cache_dir)
        network, report = synthesize_with_report(
            source, options, cache_dir=cache_dir
        )
        assert_lint_clean(report, network, source, psi=3)


class TestBenchmarks:
    @pytest.mark.parametrize("name", ["cm152a", "cm85a", "cmb", "comp"])
    def test_benchmark_stand_ins_lint_clean(self, name):
        from repro.benchgen.extended import build_extended_benchmark
        from repro.network.scripts import prepare_tels

        source = build_extended_benchmark(name)
        options = SynthesisOptions(psi=3, seed=0)
        network, report = synthesize_with_report(
            prepare_tels(source), options
        )
        assert_lint_clean(report, network, source, psi=3)

    def test_wider_psi_also_clean(self):
        from repro.benchgen.extended import build_extended_benchmark
        from repro.network.scripts import prepare_tels

        source = build_extended_benchmark("cm85a")
        options = SynthesisOptions(psi=5, seed=0, delta_on=1)
        network, report = synthesize_with_report(
            prepare_tels(source), options
        )
        assert_lint_clean(report, network, source, psi=5)


class TestEngineWiring:
    def test_lint_off_leaves_report_empty(self):
        source = random_logic_network(
            "lintoff", num_inputs=5, num_outputs=2, num_nodes=8, seed=3
        )
        _, report = synthesize_with_report(
            source, SynthesisOptions(psi=3, lint=False)
        )
        assert report.lint is None
        assert report.trace.network_lint_violations is None

    def test_trace_summary_mentions_lint(self):
        source = random_logic_network(
            "lintsum", num_inputs=5, num_outputs=2, num_nodes=8, seed=4
        )
        _, report = synthesize_with_report(source, SynthesisOptions(psi=3))
        summary = report.trace.format_summary()
        assert "lint:" in summary
        assert "0 network violations" in summary

    def test_lint_events_emitted_per_task(self):
        source = random_logic_network(
            "lintev", num_inputs=5, num_outputs=2, num_nodes=8, seed=5
        )
        _, report = synthesize_with_report(source, SynthesisOptions(psi=3))
        phases = {e.phase for e in report.trace.events()}
        assert "lint" in phases
