"""Per-rule positive/negative fixtures for the lint rule registry.

Each rule gets (at least) one network that trips it and one that is clean
under it, run through the shared :func:`run_lint` entry so selection,
sorting, and severity wiring are exercised alongside the check itself.
"""

from __future__ import annotations

import pytest

from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.lint.diagnostics import LintOptions, Severity
from repro.lint.rules import RULE_REGISTRY, registered_rules
from repro.lint.runner import lint_gates, run_lint


def gate(
    name: str,
    inputs: tuple[str, ...],
    weights: tuple[int, ...],
    threshold: int,
    delta_on: int = 0,
    delta_off: int = 1,
) -> ThresholdGate:
    return ThresholdGate(
        name,
        inputs,
        WeightThresholdVector(weights, threshold),
        delta_on,
        delta_off,
    )


def raw_gate(
    name: str,
    inputs: tuple[str, ...],
    weights: tuple[int, ...],
    threshold: int,
) -> ThresholdGate:
    """A gate bypassing the constructor validation, for defensive rules."""
    g = object.__new__(ThresholdGate)
    object.__setattr__(g, "name", name)
    object.__setattr__(g, "inputs", inputs)
    object.__setattr__(
        g, "vector", WeightThresholdVector(weights, threshold)
    )
    object.__setattr__(g, "delta_on", 0)
    object.__setattr__(g, "delta_off", 1)
    return g


def network(
    inputs: tuple[str, ...],
    outputs: tuple[str, ...],
    gates: tuple[ThresholdGate, ...],
    name: str = "t",
) -> ThresholdNetwork:
    net = ThresholdNetwork(name)
    for pi in inputs:
        net.add_input(pi)
    for po in outputs:
        net.add_output(po)
    for g in gates:
        net.add_gate(g)
    return net


def and2(name: str, a: str = "a", b: str = "b") -> ThresholdGate:
    return gate(name, (a, b), (1, 1), 2)


def rule_ids(report, rule_id: str):
    return [d for d in report.diagnostics if d.rule_id == rule_id]


CLEAN = network(("a", "b"), ("y",), (and2("y"),))


class TestRegistry:
    def test_catalog_is_nonempty_and_unique(self):
        rules = registered_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        assert any(i.startswith("TLS") for i in ids)
        assert any(i.startswith("TLM") for i in ids)
        assert any(i.startswith("TLP") for i in ids)

    def test_rule_selection_by_prefix(self):
        report = run_lint(CLEAN, LintOptions(rules=("TLS",)))
        assert all(r.startswith("TLS") for r in report.rules_run)
        report = run_lint(CLEAN, LintOptions(rules=("TLM101",)))
        assert report.rules_run == ("TLM101",)

    def test_clean_network_is_clean(self):
        report = run_lint(CLEAN, LintOptions(psi=3))
        assert report.is_clean
        assert report.exit_code() == 0
        assert report.gates_checked == 1


class TestStructuralRules:
    def test_tls001_cycle_fires(self):
        net = network(
            ("a",),
            ("y",),
            (
                gate("y", ("a", "g2"), (1, 1), 2),
                gate("g2", ("y",), (1,), 1),
            ),
        )
        report = run_lint(net)
        found = rule_ids(report, "TLS001")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "g2" in found[0].message and "y" in found[0].message

    def test_tls001_clean_on_dag(self):
        assert not rule_ids(run_lint(CLEAN), "TLS001")

    def test_tls002_dangling_fanin(self):
        net = network(("a",), ("y",), (gate("y", ("a", "ghost"), (1, 1), 2),))
        found = rule_ids(run_lint(net), "TLS002")
        assert len(found) == 1
        assert found[0].net == "ghost"
        assert found[0].severity is Severity.ERROR

    def test_tls003_undriven_output(self):
        net = network(("a", "b"), ("y", "z"), (and2("y"),))
        found = rule_ids(run_lint(net), "TLS003")
        assert len(found) == 1
        assert found[0].net == "z"

    def test_tls003_output_may_be_an_input(self):
        net = network(("a", "b"), ("a",), ())
        assert not rule_ids(run_lint(net), "TLS003")

    def test_tls004_unreachable_gate(self):
        net = network(
            ("a", "b"), ("y",), (and2("y"), and2("dead"))
        )
        found = rule_ids(run_lint(net), "TLS004")
        assert [d.gate for d in found] == ["dead"]
        assert found[0].severity is Severity.WARNING

    def test_tls005_fanin_overflow_needs_psi(self):
        net = network(
            ("a", "b", "c", "d"),
            ("y",),
            (gate("y", ("a", "b", "c", "d"), (1, 1, 1, 1), 4),),
        )
        assert not rule_ids(run_lint(net), "TLS005")  # psi unknown
        found = rule_ids(run_lint(net, LintOptions(psi=3)), "TLS005")
        assert len(found) == 1
        assert "fanin 4" in found[0].message
        assert not rule_ids(run_lint(net, LintOptions(psi=4)), "TLS005")

    def test_tls006_duplicate_body_is_note(self):
        net = network(
            ("a", "b"), ("y", "z"), (and2("y"), and2("z"))
        )
        found = rule_ids(run_lint(net), "TLS006")
        assert len(found) == 1
        assert found[0].severity is Severity.NOTE
        assert found[0].gate == "z"

    def test_tls007_unused_input(self):
        net = network(("a", "b", "c"), ("y",), (and2("y"),))
        found = rule_ids(run_lint(net), "TLS007")
        assert [d.net for d in found] == ["c"]
        assert found[0].severity is Severity.NOTE

    def test_tls008_duplicate_fanin_via_raw_gate(self):
        net = network(
            ("a",), ("y",), (raw_gate("y", ("a", "a"), (1, 1), 2),)
        )
        # Restrict to the structural rule: TLM102's local_function()
        # legitimately refuses a gate with duplicate variable names.
        found = rule_ids(run_lint(net, LintOptions(rules=("TLS008",))), "TLS008")
        assert len(found) == 1
        assert found[0].net == "a"


class TestSemanticRules:
    def test_tlm101_stale_delta_on(self):
        # AND2 <1,1;2>: tightest ON vector sums to exactly T (margin 0).
        net = network(
            ("a", "b"), ("y",), (gate("y", ("a", "b"), (1, 1), 2, 2, 1),)
        )
        found = rule_ids(run_lint(net), "TLM101")
        assert len(found) == 1
        assert "delta_on=2" in found[0].message
        assert found[0].severity is Severity.ERROR

    def test_tlm101_stale_delta_off(self):
        # OFF side: a=1,b=0 sums to 1, only 1 below T=2, claiming 3.
        net = network(
            ("a", "b"), ("y",), (gate("y", ("a", "b"), (1, 1), 2, 0, 3),)
        )
        found = rule_ids(run_lint(net), "TLM101")
        assert len(found) == 1
        assert "delta_off=3" in found[0].message

    def test_tlm101_honest_margins_clean(self):
        # <2,2;4> with delta_on=0 delta_off=2: both margins hold.
        net = network(
            ("a", "b"), ("y",), (gate("y", ("a", "b"), (2, 2), 4, 0, 2),)
        )
        assert not rule_ids(run_lint(net), "TLM101")

    def test_tlm102_zero_weight(self):
        net = network(
            ("a", "b"), ("y",), (gate("y", ("a", "b"), (1, 0), 1),)
        )
        found = rule_ids(run_lint(net), "TLM102")
        assert any("weight 0" in d.message for d in found)

    def test_tlm102_dead_input(self):
        # b's weight can never flip the outcome: T=1 and w_a=2 dominates.
        net = network(
            ("a", "b"), ("y",), (gate("y", ("a", "b"), (2, 1), 4),)
        )
        found = rule_ids(run_lint(net), "TLM102")
        assert found  # function is constant 0: both inputs are absent

    def test_tlm102_sign_flip(self):
        # NOR-like gate written with a positive weight: <1,-1;0> is
        # positive in nothing... construct an explicit contradiction:
        # f = a' (negative unate in a) but weight +1.
        net = network(
            ("a",), ("y",), (gate("y", ("a",), (-1,), 0),)
        )
        assert not rule_ids(run_lint(net), "TLM102")  # consistent
        net_bad = network(
            ("a",), ("y",), (raw_gate("y", ("a",), (1,), 0),)
        )
        # <1;0>: constant-1 regardless of a — 'a' is absent, so TLM102
        # reports the redundant connection.
        found = rule_ids(run_lint(net_bad), "TLM102")
        assert found

    def test_tlm103_constant_gates(self):
        always = network(
            ("a",), ("y",), (gate("y", ("a",), (1,), 0),)
        )
        found = rule_ids(run_lint(always), "TLM103")
        assert len(found) == 1
        assert "constant 1" in found[0].message
        never = network(
            ("a",), ("y",), (gate("y", ("a",), (1,), 5),)
        )
        found = rule_ids(run_lint(never), "TLM103")
        assert "constant 0" in found[0].message

    def test_tlm103_negative_weights_use_positive_form(self):
        # <-1;0> == a' has T_pos = 1, inside [1, 1]: clean.
        net = network(("a",), ("y",), (gate("y", ("a",), (-1,), 0),))
        assert not rule_ids(run_lint(net), "TLM103")

    def test_tlm103_skips_constant_gates_by_design(self):
        net = network((), ("y",), (gate("y", (), (), 0),))
        assert not rule_ids(run_lint(net), "TLM103")

    def test_tlm104_vacuous_delta_off(self):
        net = network(
            ("a", "b"), ("y",), (gate("y", ("a", "b"), (1, 1), 2, 0, 0),)
        )
        found = rule_ids(run_lint(net), "TLM104")
        assert len(found) == 1
        assert found[0].severity is Severity.NOTE

    def test_tlm105_needs_source(self):
        report = run_lint(CLEAN)
        assert "TLM105" not in report.rules_run

    def test_tlm105_functional_mismatch(self):
        from repro.io.blif import parse_blif

        source = parse_blif(
            ".model s\n.inputs a b\n.outputs y\n"
            ".names a b y\n11 1\n.end\n"
        )
        # OR gate instead of AND: disagrees on a=1,b=0.
        wrong = network(
            ("a", "b"), ("y",), (gate("y", ("a", "b"), (1, 1), 1),)
        )
        report = run_lint(wrong, source=source)
        found = rule_ids(report, "TLM105")
        assert len(found) == 1
        assert "counterexample" in found[0].message
        right = network(("a", "b"), ("y",), (and2("y"),))
        assert not rule_ids(run_lint(right, source=source), "TLM105")


class TestLintGates:
    """The engine's per-cone hook: gate-local rules over a bare list."""

    def test_clean_gates(self):
        assert lint_gates([and2("y")], psi=3) == ()

    def test_fanin_overflow_and_margin(self):
        gates = [
            gate("wide", ("a", "b", "c", "d"), (1, 1, 1, 1), 4),
            gate("stale", ("a", "b"), (1, 1), 2, 2, 1),
        ]
        found = lint_gates(gates, psi=3)
        assert {d.rule_id for d in found} >= {"TLS005", "TLM101"}

    def test_rule_filter(self):
        gates = [gate("stale", ("a", "b"), (1, 1), 2, 2, 1)]
        assert lint_gates(gates, psi=3, rules=("TLS005",)) == ()

    def test_wide_gates_skip_enumeration(self):
        wide = gate(
            "w",
            tuple(f"x{i}" for i in range(18)),
            tuple([1] * 18),
            18,
            5,
            1,
        )
        # 2**18 points would be enumerated otherwise; the cap skips them.
        found = lint_gates([wide], max_enumeration_fanin=16)
        assert not [d for d in found if d.rule_id == "TLM101"]


class TestReportShape:
    def test_diagnostics_sorted_errors_first(self):
        net = network(
            ("a", "b", "c"),
            ("y",),
            (
                gate("y", ("a", "ghost"), (1, 1), 2),  # TLS002 error
                and2("dead"),  # TLS004 warning
            ),
        )
        report = run_lint(net)
        ranks = [d.severity.rank for d in report.diagnostics]
        assert ranks == sorted(ranks, reverse=True)

    def test_exit_code_strict_escalates_notes(self):
        net = network(("a", "b", "c"), ("y",), (and2("y"),))  # TLS007 note
        report = run_lint(net)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_severity_registry_matches_diagnostics(self):
        for spec in registered_rules():
            assert spec.rule_id in RULE_REGISTRY
            assert spec.severity in (
                Severity.NOTE,
                Severity.WARNING,
                Severity.ERROR,
            )


@pytest.mark.parametrize(
    "rule_id",
    [r.rule_id for r in registered_rules() if r.rule_id != "TLP201"],
)
def test_every_rule_has_a_docstringed_description(rule_id):
    spec = RULE_REGISTRY[rule_id]
    assert len(spec.description) > 20
    assert spec.category in ("structure", "semantic", "parse", "analysis")


class TestGateModelRouting:
    """Gate-model-aware rules: TLM106 and the model-routed margin check."""

    @staticmethod
    def mt_gate(name: str = "y") -> ThresholdGate:
        from repro.core.threshold import MultiThresholdVector

        # <1, 1; 1, 2>: two-input XOR as a single multi-threshold gate.
        return ThresholdGate(
            name, ("a", "b"), MultiThresholdVector((1, 1), (1, 2)), 0, 1
        )

    def flash_lint(self, net):
        return run_lint(net, LintOptions(gate_model="flash"))

    def test_tlm106_silent_under_the_default_model(self):
        net = network(("a",), ("y",), (gate("y", ("a",), (9,), 5),))
        assert not rule_ids(run_lint(net), "TLM106")

    def test_tlm106_off_grid_weight(self):
        # |w| = 9 exceeds the 8 programmable levels of the flash device.
        net = network(("a",), ("y",), (gate("y", ("a",), (9,), 5),))
        found = rule_ids(self.flash_lint(net), "TLM106")
        assert len(found) == 1
        assert "off the device grid" in found[0].message
        assert found[0].severity is Severity.ERROR

    def test_tlm106_rejects_multi_threshold_gates(self):
        net = network(("a", "b"), ("y",), (self.mt_gate(),))
        found = rule_ids(self.flash_lint(net), "TLM106")
        assert len(found) == 1
        assert "single-threshold flash cell" in found[0].message

    def test_tlm106_drift_floor(self):
        # AND <1,1;2>: ON margin 0 < ceil(0.25 * 1) = 1.
        net = network(("a", "b"), ("y",), (and2("y"),))
        found = rule_ids(self.flash_lint(net), "TLM106")
        assert len(found) == 1
        assert "drift floor" in found[0].message

    def test_tlm106_clean_on_signed_off_gates(self):
        # <2, 2; 3>: margins (1, 1) cover the drift of w = 2.
        net = network(("a", "b"), ("y",), (gate("y", ("a", "b"), (2, 2), 3),))
        assert not rule_ids(self.flash_lint(net), "TLM106")

    def test_mt_gates_lint_clean_under_their_own_model(self):
        net = network(("a", "b"), ("y",), (self.mt_gate(),))
        report = run_lint(net, LintOptions(gate_model="multi-threshold"))
        assert report.violations == 0

    def test_mt_gates_skip_the_unateness_rule(self):
        # XOR is deliberately binate: TLM102 must not flag it.
        net = network(("a", "b"), ("y",), (self.mt_gate(),))
        assert not rule_ids(run_lint(net), "TLM102")

    def test_tlm103_mt_gate_with_unreachable_thresholds(self):
        from repro.core.threshold import MultiThresholdVector

        g = ThresholdGate(
            "y", ("a", "b"), MultiThresholdVector((1, 1), (5, 6)), 0, 0
        )
        net = network(("a", "b"), ("y",), (g,))
        found = rule_ids(run_lint(net), "TLM103")
        assert len(found) == 1
        assert "constant" in found[0].message

    def test_lint_gates_threads_the_model(self):
        from repro.lint.runner import lint_gates

        diags = lint_gates([gate("y", ("a",), (9,), 5)], gate_model="flash")
        assert any(d.rule_id == "TLM106" for d in diags)
        diags = lint_gates([gate("y", ("a",), (9,), 5)])
        assert not any(d.rule_id == "TLM106" for d in diags)
