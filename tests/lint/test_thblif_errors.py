"""Hardened ``parse_thblif`` error paths.

Every malformation must raise a structured :class:`BlifError` carrying the
offending line number — never an ``IndexError`` / ``KeyError`` / raw
``NetworkError`` escaping from network construction.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.errors import BlifError
from repro.io.thblif import parse_thblif

GOOD = """.model m
.inputs a b
.outputs y
.thgate a b y
.vector 1 1 2
.delta 0 1
.end
"""


def parse_error(text: str) -> BlifError:
    with pytest.raises(BlifError) as excinfo:
        parse_thblif(text)
    return excinfo.value


class TestWellFormed:
    def test_good_file_parses(self):
        net = parse_thblif(GOOD)
        assert net.name == "m"
        assert net.num_gates == 1

    def test_gate_lines_recorded(self):
        net = parse_thblif(GOOD)
        assert net.gate_lines == {"y": 4}


class TestVectorErrors:
    def test_too_few_values(self):
        exc = parse_error(GOOD.replace(".vector 1 1 2", ".vector 1 2"))
        assert exc.line_number == 5
        assert "2 weights plus T" in str(exc)

    def test_too_many_values(self):
        exc = parse_error(GOOD.replace(".vector 1 1 2", ".vector 1 1 1 2"))
        assert exc.line_number == 5
        assert "got 4 values" in str(exc)

    def test_non_integer_weight(self):
        exc = parse_error(GOOD.replace(".vector 1 1 2", ".vector 1 x 2"))
        assert exc.line_number == 5
        assert "non-integer weight" in str(exc)

    def test_vector_outside_gate(self):
        exc = parse_error(".model m\n.vector 1 1\n.end\n")
        assert exc.line_number == 2

    def test_duplicate_vector(self):
        exc = parse_error(
            GOOD.replace(".vector 1 1 2", ".vector 1 1 2\n.vector 1 1 2")
        )
        assert "duplicate .vector" in str(exc)


class TestGateErrors:
    def test_truncated_gate_body(self):
        exc = parse_error(
            ".model m\n.inputs a\n.outputs y\n.thgate a y\n.end\n"
        )
        assert "truncated gate body" in str(exc)

    def test_thgate_without_output(self):
        exc = parse_error(".model m\n.thgate\n.end\n")
        assert exc.line_number == 2

    def test_repeated_gate_output(self):
        text = (
            ".model m\n.inputs a b\n.outputs y\n"
            ".thgate a y\n.vector 1 1\n"
            ".thgate b y\n.vector 1 1\n.end\n"
        )
        exc = parse_error(text)
        assert exc.line_number == 6
        assert "duplicate signal" in str(exc)

    def test_gate_shadowing_an_input(self):
        text = (
            ".model m\n.inputs a b\n.outputs a\n"
            ".thgate b a\n.vector 1 1\n.end\n"
        )
        exc = parse_error(text)
        assert exc.line_number == 4

    def test_duplicate_fanin_names(self):
        text = (
            ".model m\n.inputs a\n.outputs y\n"
            ".thgate a a y\n.vector 1 1 2\n.end\n"
        )
        exc = parse_error(text)
        assert exc.line_number == 4
        assert "duplicate input names" in str(exc)


class TestDeltaErrors:
    def test_wrong_arity(self):
        exc = parse_error(GOOD.replace(".delta 0 1", ".delta 1"))
        assert exc.line_number == 6
        assert "exactly two values" in str(exc)

    def test_non_integer(self):
        exc = parse_error(GOOD.replace(".delta 0 1", ".delta 0 x"))
        assert "non-integer tolerance" in str(exc)

    def test_outside_gate(self):
        exc = parse_error(".model m\n.delta 0 1\n.end\n")
        assert exc.line_number == 2


class TestFramingErrors:
    def test_duplicate_input(self):
        exc = parse_error(GOOD.replace(".inputs a b", ".inputs a a b"))
        assert exc.line_number == 2

    def test_duplicate_output(self):
        exc = parse_error(GOOD.replace(".outputs y", ".outputs y y"))
        assert "duplicate primary output" in str(exc)

    def test_unknown_directive(self):
        exc = parse_error(GOOD.replace(".delta 0 1", ".bogus 1"))
        assert "unknown directive" in str(exc)

    def test_missing_end_still_flushes(self):
        net = parse_thblif(GOOD.replace(".end\n", ""))
        assert net.num_gates == 1


class TestStructuralValidation:
    UNDEFINED = (
        ".model m\n.inputs a\n.outputs y\n"
        ".thgate a ghost y\n.vector 1 1 2\n.end\n"
    )
    CYCLE = (
        ".model m\n.inputs a\n.outputs y\n"
        ".thgate a g2 y\n.vector 1 1 2\n"
        ".thgate y g2\n.vector 1 1\n.end\n"
    )

    def test_undefined_fanin_raises_by_default(self):
        with pytest.raises(BlifError):
            parse_thblif(self.UNDEFINED)

    def test_cycle_raises_by_default(self):
        with pytest.raises(BlifError):
            parse_thblif(self.CYCLE)

    def test_validate_false_defers_to_lint(self):
        net = parse_thblif(self.CYCLE, validate=False)
        assert net.num_gates == 2  # built, for the lint rules to judge


class TestNoRawExceptions:
    """Fuzz-ish: truncations of a good file never raise non-BlifError."""

    def test_every_prefix_is_structured(self):
        for cut in range(len(GOOD)):
            with contextlib.suppress(BlifError):
                parse_thblif(GOOD[:cut])
