"""NP-semi-canonicalization: transform algebra and key invariance."""

import random

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.cache.canonical import (
    NPTransform,
    np_canonicalize,
    vector_from_canonical,
    vector_to_canonical,
    verify_vector_key,
)
from repro.core.identify import is_threshold_function
from repro.core.threshold import WeightThresholdVector


def random_cover(rng: random.Random, nvars: int) -> Cover:
    cubes = []
    for _ in range(rng.randint(1, 4)):
        lits = {}
        for var in rng.sample(range(nvars), rng.randint(1, nvars)):
            lits[var] = rng.random() < 0.6
        cubes.append(Cube.from_literals(lits, nvars))
    return Cover(cubes, nvars).scc()


def np_variant(cover_key: tuple, perm: tuple, negate_mask: int) -> tuple:
    """An NP-equivalent cover key: negate masked variables, then permute."""
    nvars, rows = cover_key
    out = []
    for pos, neg in rows:
        flipped_pos = (pos & ~negate_mask) | (neg & negate_mask)
        flipped_neg = (neg & ~negate_mask) | (pos & negate_mask)
        new_pos = new_neg = 0
        for new_var, old_var in enumerate(perm):
            if flipped_pos & (1 << old_var):
                new_pos |= 1 << new_var
            if flipped_neg & (1 << old_var):
                new_neg |= 1 << new_var
        out.append((new_pos, new_neg))
    return (nvars, tuple(sorted(out)))


class TestTransformAlgebra:
    def test_identity_round_trip(self):
        transform = NPTransform((0, 1, 2), (False, False, False))
        vector = WeightThresholdVector((2, -1, 3), 2)
        values = vector_to_canonical(vector, transform)
        assert values == [2, -1, 3, 2]
        assert vector_from_canonical(values, transform) == vector
        assert transform.is_identity

    def test_random_transforms_invert_exactly(self):
        rng = random.Random(7)
        for _ in range(200):
            n = rng.randint(1, 6)
            perm = tuple(rng.sample(range(n), n))
            flipped = tuple(rng.random() < 0.5 for _ in range(n))
            transform = NPTransform(perm, flipped)
            vector = WeightThresholdVector(
                tuple(rng.randint(-4, 4) for _ in range(n)), rng.randint(-4, 4)
            )
            values = vector_to_canonical(vector, transform)
            assert vector_from_canonical(values, transform) == vector

    def test_negation_is_an_involution(self):
        transform = NPTransform((0, 1), (True, False))
        vector = WeightThresholdVector((3, 2), 4)
        once = vector_from_canonical(
            vector_to_canonical(vector, transform), transform
        )
        assert once == vector


class TestCanonicalKey:
    def test_canonical_form_is_a_fixpoint(self):
        rng = random.Random(11)
        for _ in range(100):
            cover = random_cover(rng, rng.randint(2, 5))
            canonical = np_canonicalize(cover.canonical_key())
            again = np_canonicalize(canonical.key)
            assert again.key == canonical.key

    def test_solved_vector_verifies_in_canonical_space(self):
        rng = random.Random(13)
        checked = 0
        for _ in range(150):
            cover = random_cover(rng, rng.randint(2, 5))
            vector = is_threshold_function(cover)
            if vector is None:
                continue
            checked += 1
            key = cover.canonical_key()
            assert verify_vector_key(key, vector, 0, 1)
            canonical = np_canonicalize(key)
            values = vector_to_canonical(vector, canonical.transform)
            canonical_vector = WeightThresholdVector(
                tuple(values[:-1]), values[-1]
            )
            assert verify_vector_key(canonical.key, canonical_vector, 0, 1)
            back = vector_from_canonical(values, canonical.transform)
            assert back == vector
        assert checked > 30

    def test_np_equivalent_covers_transport_vectors(self):
        """The cache-hit path: a vector solved for one cover serves every
        NP-equivalent cover that lands on the same canonical key."""
        rng = random.Random(17)
        matched = transported = 0
        for _ in range(200):
            nvars = rng.randint(2, 5)
            cover = random_cover(rng, nvars)
            vector = is_threshold_function(cover)
            if vector is None:
                continue
            key = cover.canonical_key()
            perm = tuple(rng.sample(range(nvars), nvars))
            mask = rng.getrandbits(nvars)
            variant_key = np_variant(key, perm, mask)
            a = np_canonicalize(key)
            b = np_canonicalize(variant_key)
            if a.key != b.key:
                continue  # semi-canonical: phase ties may split classes
            matched += 1
            values = vector_to_canonical(vector, a.transform)
            transported_vector = vector_from_canonical(values, b.transform)
            assert verify_vector_key(variant_key, transported_vector, 0, 1)
            if not b.transform.is_identity:
                transported += 1
        assert matched > 50
        assert transported > 20


class TestVerification:
    def test_wrong_vector_is_rejected(self):
        cover = Cover(
            (Cube.from_literals({0: True, 1: True}, 2),), 2
        )  # AND
        key = cover.canonical_key()
        assert verify_vector_key(key, WeightThresholdVector((1, 1), 2), 0, 1)
        assert not verify_vector_key(
            key, WeightThresholdVector((1, 1), 1), 0, 1
        )  # fires on single inputs: OR, not AND

    def test_margins_are_enforced_not_just_function(self):
        cover = Cover((Cube.from_literals({0: True}, 1),), 1)  # buffer
        vector = WeightThresholdVector((1,), 1)
        assert verify_vector_key(cover.canonical_key(), vector, 0, 1)
        # Functionally right, but the ON margin is below delta_on=1.
        assert not verify_vector_key(cover.canonical_key(), vector, 1, 1)

    def test_width_mismatch_rejected(self):
        cover = Cover((Cube.from_literals({0: True}, 2),), 2)
        assert not verify_vector_key(
            cover.canonical_key(), WeightThresholdVector((1,), 1), 0, 1
        )
