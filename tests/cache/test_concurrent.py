"""Concurrent-writer safety of the persistent cache (the serve daemon's
workers all flush the same journal).

The historical single-writer assumption is gone: ``put``/``flush``/
``compact`` are thread-safe, and the journal file itself is guarded by an
advisory ``flock`` so two appends never interleave half-lines.
"""

from __future__ import annotations

import pickle
import threading

from repro.cache.store import cache_file, open_cache


class TestConcurrentWriters:
    def test_two_threads_flushing_lose_nothing(self, tmp_path):
        """The regression: interleaved put+flush from two threads."""
        cache = open_cache(tmp_path)
        per_thread = 200
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def writer(tag: str) -> None:
            try:
                barrier.wait(timeout=10)
                for i in range(per_thread):
                    cache.put(f"{tag}:{i}", [i, i + 1])
                    if i % 7 == 0:  # flush mid-stream, both threads
                        cache.flush()
                cache.flush()
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert cache.dirty_count == 0

        # Every entry from both writers survives a cold reload: no torn
        # lines, no lost appends.
        reloaded = open_cache(tmp_path)
        assert len(reloaded) == 2 * per_thread
        assert reloaded.file_stats.corrupt_lines == 0
        for tag in ("a", "b"):
            for i in range(per_thread):
                assert reloaded.get(f"{tag}:{i}") == [i, i + 1]

    def test_put_during_flush_is_not_dropped(self, tmp_path):
        """An entry added while another thread flushes still reaches disk."""
        cache = open_cache(tmp_path)
        for i in range(50):
            cache.put(f"warm:{i}", [i])
        racing = threading.Thread(
            target=lambda: cache.put("late", [99]) or cache.flush()
        )
        racing.start()
        cache.flush()
        racing.join(timeout=10)
        cache.flush()
        reloaded = open_cache(tmp_path)
        assert reloaded.get("late") == [99]
        assert len(reloaded) == 51

    def test_concurrent_compact_and_put(self, tmp_path):
        cache = open_cache(tmp_path)
        for i in range(20):
            cache.put(f"k{i}", [i])
        cache.flush()

        stop = threading.Event()

        def compactor() -> None:
            while not stop.is_set():
                cache.compact()

        thread = threading.Thread(target=compactor)
        thread.start()
        try:
            for i in range(20, 120):
                cache.put(f"k{i}", [i])
                cache.flush()
        finally:
            stop.set()
            thread.join(timeout=10)
        cache.compact()
        reloaded = open_cache(tmp_path)
        assert len(reloaded) == 120
        assert reloaded.file_stats.corrupt_lines == 0

    def test_pickle_snapshot_while_writing(self, tmp_path):
        """Engine workers pickle the cache while the daemon mutates it."""
        cache = open_cache(tmp_path)
        stop = threading.Event()

        def mutator() -> None:
            # Bounded: an unbounded spin loses the race against the O(n)
            # snapshot copies and the test goes quadratic (each pickle
            # grows the dict the next pickle must copy).
            i = 0
            while not stop.is_set() and i < 5000:
                cache.put(f"m{i}", [i])
                i += 1

        thread = threading.Thread(target=mutator)
        thread.start()
        try:
            for _ in range(50):
                clone = pickle.loads(pickle.dumps(cache))
                assert clone.get("m0") in ([0], clone.get("m0"))
        finally:
            stop.set()
            thread.join(timeout=10)

    def test_advisory_lock_file_appears(self, tmp_path):
        try:
            import fcntl  # noqa: F401
        except ImportError:  # pragma: no cover - non-POSIX fallback
            return
        cache = open_cache(tmp_path)
        cache.put("k", [1])
        cache.flush()
        lock_path = cache_file(tmp_path).with_name(
            cache_file(tmp_path).name + ".lock"
        )
        assert lock_path.exists()
