"""Persistent cache file behavior: tolerance, atomicity, store layering."""

import json
import pickle

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.cache.store import (
    ABSENT,
    FORMAT_NAME,
    PersistentCache,
    cache_file,
    entry_key,
    open_cache,
    parse_signature,
    signature_string,
)
from repro.core.threshold import WeightThresholdVector
from repro.engine.store import ResultStore


def and_key(delta_on: int = 0, delta_off: int = 1) -> tuple:
    cover = Cover((Cube.from_literals({0: True, 1: True}, 2),), 2)
    return (cover.canonical_key(), delta_on, delta_off, None)


AND_VECTOR = WeightThresholdVector((1, 1), 2)


class TestSignatures:
    def test_signature_round_trip(self):
        key = (3, ((1, 2), (4, 0)))
        assert parse_signature(signature_string(key)) == key

    def test_empty_rows(self):
        key = (2, ())
        assert parse_signature(signature_string(key)) == key

    def test_entry_key_distinguishes_parameters(self):
        sig = signature_string((2, ((3, 0),)))
        keys = {
            entry_key(sig, 0, 1, None),
            entry_key(sig, 1, 1, None),
            entry_key(sig, 0, 2, None),
            entry_key(sig, 0, 1, 4),
        }
        assert len(keys) == 4


class TestPersistence:
    def test_put_flush_reload(self, tmp_path):
        cache = open_cache(tmp_path)
        assert cache.put("k1", [1, 2, 3])
        assert cache.put("k2", None)
        assert not cache.put("k1", [9])  # already known
        assert cache.flush() == 2
        again = open_cache(tmp_path)
        assert again.get("k1") == [1, 2, 3]
        assert again.get("k2") is None
        assert again.get("k3") is ABSENT
        assert again.solved_count == 1

    def test_flush_appends_incrementally(self, tmp_path):
        cache = open_cache(tmp_path)
        cache.put("a", [1])
        cache.flush()
        cache.put("b", [2])
        assert cache.flush() == 1  # only the new entry
        assert len(open_cache(tmp_path)) == 2

    def test_corrupt_lines_are_skipped(self, tmp_path):
        cache = open_cache(tmp_path)
        cache.put("good", [5])
        cache.flush()
        with open(cache_file(tmp_path), "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"k": 12, "v": [1]}\n')  # key must be a string
            handle.write('{"k": "torn", "v": [1')  # torn final line
        again = open_cache(tmp_path)
        assert again.get("good") == [5]
        assert len(again) == 1
        assert again.file_stats.corrupt_lines == 3

    def test_mismatched_header_goes_cold_then_rewrites(self, tmp_path):
        stale = open_cache(tmp_path, fingerprint="old-fingerprint")
        stale.put("k", [1])
        stale.flush()
        cache = open_cache(tmp_path)  # current fingerprint
        assert len(cache) == 0
        assert cache.file_stats.rejected_header
        cache.put("fresh", [2])
        cache.flush()
        text = cache_file(tmp_path).read_text()
        header = json.loads(text.splitlines()[0])
        assert header["format"] == FORMAT_NAME
        assert "old-fingerprint" not in text
        assert open_cache(tmp_path).get("fresh") == [2]

    def test_garbage_header_goes_cold(self, tmp_path):
        path = cache_file(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("complete nonsense\n")
        cache = open_cache(tmp_path)
        assert len(cache) == 0
        assert cache.file_stats.rejected_header

    def test_compaction_dedupes_concurrent_appends(self, tmp_path):
        # Two writers appending the same key: the loader keeps one copy and
        # compaction rewrites the file without the duplicate line.
        a = open_cache(tmp_path)
        b = open_cache(tmp_path)
        a.put("dup", [1])
        b.put("dup", [1])
        b.put("only-b", [2])
        a.flush()
        b.flush()
        merged = open_cache(tmp_path)
        assert len(merged) == 2
        merged.compact()
        lines = cache_file(tmp_path).read_text().splitlines()
        assert len(lines) == 3  # header + 2 entries

    def test_clear_removes_file(self, tmp_path):
        cache = open_cache(tmp_path)
        cache.put("k", [1])
        cache.flush()
        cache.clear()
        assert len(cache) == 0
        assert not cache_file(tmp_path).exists()

    def test_pickles_to_read_only_snapshot(self, tmp_path):
        cache = open_cache(tmp_path)
        cache.put("k", [1, 2])
        clone: PersistentCache = pickle.loads(pickle.dumps(cache))
        assert clone.read_only
        assert clone.get("k") == [1, 2]
        clone.put("new", [3])
        assert clone.dirty_count == 0
        assert clone.flush() == 0  # read-only snapshots never write


class TestResultStoreLayering:
    def test_miss_then_persistent_hit_across_stores(self, tmp_path):
        first = ResultStore.with_cache_dir(tmp_path)
        key = and_key()
        assert first.is_miss(first.get_vector(key))
        first.put_vector(key, AND_VECTOR)
        assert first.flush_persistent() == 1

        second = ResultStore.with_cache_dir(tmp_path)
        found = second.get_vector(key)
        assert found == AND_VECTOR
        assert second.stats.persistent_hits == 1
        assert second.stats.vector_hits == 1  # served lookups count as hits
        # Installed in memory: the next lookup stays off the disk tier.
        second.get_vector(key)
        assert second.stats.persistent_hits == 1
        assert second.stats.vector_hits == 2

    def test_none_verdict_round_trips(self, tmp_path):
        first = ResultStore.with_cache_dir(tmp_path)
        key = and_key()
        first.put_vector(key, None)
        first.flush_persistent()
        second = ResultStore.with_cache_dir(tmp_path)
        found = second.get_vector(key)
        assert found is None
        assert not second.is_miss(found)
        assert second.stats.persistent_hits == 1

    def test_foreign_keys_stay_memory_only(self, tmp_path):
        store = ResultStore.with_cache_dir(tmp_path)
        store.put_vector(("canon", 0, 1, None), (1, 2, 3))
        assert store.get_vector(("canon", 0, 1, None)) == (1, 2, 3)
        assert store.flush_persistent() == 0
        assert store.stats.persistent_lookups == 0

    def test_corrupted_disk_entry_is_rejected_not_served(self, tmp_path):
        """A wrong vector on disk fails re-verification and falls through
        to a miss instead of poisoning synthesis."""
        store = ResultStore.with_cache_dir(tmp_path)
        key = and_key()
        store._persistent_put(key, WeightThresholdVector((1, 1), 1))  # OR!
        store.flush_persistent()
        fresh = ResultStore.with_cache_dir(tmp_path)
        assert fresh.is_miss(fresh.get_vector(key))
        assert fresh.stats.transform_rejects == 1
        assert fresh.stats.persistent_misses == 1

    def test_delta_settings_are_separate_disk_entries(self, tmp_path):
        store = ResultStore.with_cache_dir(tmp_path)
        store.put_vector(and_key(0, 1), AND_VECTOR)
        store.put_vector(and_key(0, 2), WeightThresholdVector((2, 2), 4))
        assert store.flush_persistent() == 2

    def test_merge_commits_worker_vectors_to_disk(self, tmp_path):
        worker = ResultStore()
        worker.begin_journal()
        worker.put_vector(and_key(), AND_VECTOR)
        delta = worker.take_journal()

        master = ResultStore.with_cache_dir(tmp_path)
        master.merge(delta)
        assert master.flush_persistent() == 1
        assert ResultStore.with_cache_dir(tmp_path).get_vector(
            and_key()
        ) == AND_VECTOR

    def test_read_only_snapshot_skips_persistent_put(self, tmp_path):
        master = ResultStore.with_cache_dir(tmp_path)
        worker_cache = pickle.loads(pickle.dumps(master.persistent))
        worker = ResultStore(persistent=worker_cache)
        worker.put_vector(and_key(), AND_VECTOR)
        assert worker.flush_persistent() == 0
        assert worker_cache.dirty_count == 0
