"""Differential acceptance: cached synthesis must match cache-free synthesis.

Three configurations of the same work — cache disabled, cold cache, warm
cache — must classify every function identically and emit networks that are
simulation-equivalent to the source.  Every vector served by the cache
(including NP-transformed ones) must satisfy its cover's ON/OFF sets with
the full delta margins, which is re-checked here explicitly on top of the
lookup path's own verification.
"""

import random

from repro.benchgen.random_logic import random_logic_network
from repro.cache.canonical import verify_vector_key
from repro.core.identify import ThresholdChecker
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.verify import verify_threshold_network
from repro.engine.store import ResultStore
from tests.cache.test_canonical import random_cover


class TestDifferentialCovers:
    def test_cold_warm_disabled_agree_on_200_covers(self, tmp_path):
        rng = random.Random(2026)
        covers = [random_cover(rng, rng.randint(2, 5)) for _ in range(200)]
        cache_dir = tmp_path / "cache"

        plain = ThresholdChecker(store=ResultStore())
        cold = ThresholdChecker(store=ResultStore.with_cache_dir(cache_dir))
        cold_results = [cold.check(c) for c in covers]
        cold.store.flush_persistent()
        warm = ThresholdChecker(store=ResultStore.with_cache_dir(cache_dir))

        solved = 0
        for cover, cold_vector in zip(covers, cold_results):
            plain_vector = plain.check(cover)
            warm_vector = warm.check(cover)
            # Threshold-ness is a property of the function: every
            # configuration must agree on the classification.
            assert (plain_vector is None) == (cold_vector is None)
            assert (plain_vector is None) == (warm_vector is None)
            if plain_vector is None:
                continue
            solved += 1
            # Vectors may legitimately differ (a transported NP-equivalent
            # solve), but each must honor the cover's margins exactly.
            key = cover.scc().canonical_key()
            for vector in (plain_vector, cold_vector, warm_vector):
                assert verify_vector_key(key, vector, 0, 1)
        assert solved > 50
        assert warm.store.stats.persistent_hits > 0
        assert warm.store.stats.transform_rejects == 0
        # The cold pass itself transports solves between NP-equivalent
        # covers of the batch — the intra-run benefit of the canonical key.
        assert cold.store.stats.persistent_lookups > 0


class TestDifferentialNetworks:
    def test_networks_equivalent_across_cache_modes(self, tmp_path):
        cache_dir = str(tmp_path / "netcache")
        options = SynthesisOptions(psi=3, seed=0)
        for seed in (1, 2, 3):
            source = random_logic_network(
                f"rand{seed}", num_inputs=6, num_outputs=2, num_nodes=10,
                seed=seed,
            )
            disabled, _ = synthesize_with_report(source, options)
            cold, _ = synthesize_with_report(
                source, options, cache_dir=cache_dir
            )
            warm, warm_report = synthesize_with_report(
                source, options, cache_dir=cache_dir
            )
            for network in (disabled, cold, warm):
                assert verify_threshold_network(source, network), seed
            warm_store = warm_report.checker.store
            assert warm_store.stats.transform_rejects == 0

    def test_warm_gates_keep_their_delta_margins(self, tmp_path):
        """Every gate of a cache-warm network must still meet the defect
        tolerances it is labeled with (Eq. 1), transformed hits included."""
        cache_dir = str(tmp_path / "margins")
        options = SynthesisOptions(psi=3, seed=0, delta_on=1, delta_off=1)
        source = random_logic_network(
            "margins", num_inputs=6, num_outputs=2, num_nodes=12, seed=4
        )
        synthesize_with_report(source, options, cache_dir=cache_dir)
        warm, report = synthesize_with_report(
            source, options, cache_dir=cache_dir
        )
        assert verify_threshold_network(source, warm)
        for gate in warm.gates():
            on_margin, off_margin = gate.margins()
            if on_margin is not None:
                assert on_margin >= gate.delta_on, gate.name
            if off_margin is not None:
                assert off_margin >= gate.delta_off, gate.name

    def test_process_pool_run_persists_and_rereads(self, tmp_path):
        """Workers hold read-only snapshots; their journaled solves must
        still reach disk through the scheduler merge."""
        cache_dir = str(tmp_path / "pool")
        options = SynthesisOptions(psi=3, seed=0)
        source = random_logic_network(
            "pool", num_inputs=6, num_outputs=3, num_nodes=12, seed=5
        )
        parallel, _ = synthesize_with_report(
            source, options, jobs=2, cache_dir=cache_dir
        )
        assert verify_threshold_network(source, parallel)

        warm_store = ResultStore.with_cache_dir(cache_dir)
        assert len(warm_store.persistent) > 0
        warm, report = synthesize_with_report(
            source, options, store=warm_store
        )
        assert verify_threshold_network(source, warm)
        assert warm_store.stats.persistent_hits > 0
        assert warm_store.stats.persistent_misses == 0
