"""Crash-safe compaction and chaos-injected cache I/O faults."""

from __future__ import annotations

import os
import subprocess
import sys

from repro.cache.store import ABSENT, open_cache
from repro.faults.injector import CHAOS_ENV

#: Child process: populate a cache, then die at the instant compaction
#: would atomically swap the rewritten file in.  Everything before the
#: ``os.replace`` — including the temp-file fsync — has already happened.
_KILL_AT_REPLACE = """
import os, sys
import repro.cache.store as store

cache = store.open_cache(sys.argv[1])
for i in range(8):
    cache.put(f"key{i}", [i, i + 1])
cache.flush()

os.replace = lambda src, dst: os._exit(9)
cache.put("late", [99])
cache.compact()
os._exit(3)  # not reached: compact must hit the patched replace
"""


class TestKillDuringCompact:
    def test_old_journal_survives_a_kill_at_the_rename(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src")
        env.pop(CHAOS_ENV, None)
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_AT_REPLACE, str(tmp_path)],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 9, proc.stderr
        # The kill landed between writing the temp file and the rename:
        # the original journal must be complete and loadable.
        cache = open_cache(tmp_path)
        assert cache.file_stats.corrupt_lines == 0
        for i in range(8):
            assert cache.get(f"key{i}") == [i, i + 1]
        # The rename never happened, so the un-flushed entry is absent.
        assert cache.get("late") is ABSENT

    def test_compact_fsyncs_the_payload_before_the_rename(
        self, tmp_path, monkeypatch
    ):
        events: list[str] = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os,
            "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda s, d: (events.append("replace"), real_replace(s, d))[1],
        )
        cache = open_cache(tmp_path)
        cache.put("k", [1])
        cache.compact()
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")

    def test_compact_keeps_all_entries(self, tmp_path):
        cache = open_cache(tmp_path)
        for i in range(5):
            cache.put(f"key{i}", [i])
        cache.flush()
        cache.put("extra", None)
        cache.compact()
        again = open_cache(tmp_path)
        assert len(again) == 6
        assert again.get("extra") is None
        assert again.file_stats.corrupt_lines == 0


class TestChaosCacheFaults:
    def _seeded(self, tmp_path):
        """A cache whose file already exists (flush takes the append path)."""
        cache = open_cache(tmp_path)
        cache.put("k0", [0])
        assert cache.flush() == 1
        return cache

    def test_flush_retry_recovers_from_a_transient_fault(
        self, tmp_path, monkeypatch
    ):
        cache = self._seeded(tmp_path)
        # Seed 6: the first append attempt fails, the retry succeeds.
        monkeypatch.setenv(CHAOS_ENV, "cache=0.6:6")
        cache.put("k1", [1, 2])
        assert cache.flush() == 1
        monkeypatch.delenv(CHAOS_ENV)
        assert open_cache(tmp_path).get("k1") == [1, 2]

    def test_persistent_fault_degrades_without_raising(
        self, tmp_path, monkeypatch
    ):
        cache = self._seeded(tmp_path)
        monkeypatch.setenv(CHAOS_ENV, "cache=1.0:0")
        cache.put("k1", [1])
        assert cache.flush() == 0  # warn-and-continue, journal retained
        assert cache.dirty_count == 1
        monkeypatch.delenv(CHAOS_ENV)
        assert cache.flush() == 1  # fault cleared: the journal drains
        assert open_cache(tmp_path).get("k1") == [1]

    def test_persistent_fault_on_a_fresh_file_keeps_the_journal(
        self, tmp_path, monkeypatch
    ):
        # Fresh-file flush routes through compact(); its failure must not
        # pretend to have written anything.
        monkeypatch.setenv(CHAOS_ENV, "cache=1.0:0")
        cache = open_cache(tmp_path)
        cache.put("k1", [1])
        assert cache.flush() == 0
        monkeypatch.delenv(CHAOS_ENV)
        assert cache.flush() == 1
        assert open_cache(tmp_path).get("k1") == [1]

    def test_torn_trailing_line_is_skipped_on_reload(
        self, tmp_path, monkeypatch
    ):
        cache = self._seeded(tmp_path)
        monkeypatch.setenv(CHAOS_ENV, "cache-corrupt=1.0:0")
        cache.put("k1", [7])
        cache.put("k2", None)
        cache.flush()
        monkeypatch.delenv(CHAOS_ENV)
        again = open_cache(tmp_path)
        assert again.file_stats.corrupt_lines == 1
        assert again.get("k1") == [7]
        assert again.get("k2") is None
        assert len(again) == 3
