"""The network cache tier: HTTP round trips and the verify-before-trust path."""

from __future__ import annotations

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.cache.network import NetworkCacheClient
from repro.cache.store import ABSENT, values_etag
from repro.core.threshold import WeightThresholdVector
from repro.engine.store import _MISSING, ResultStore
from repro.serve.app import ServeApp


def and_key(delta_on: int = 0, delta_off: int = 1) -> tuple:
    cover = Cover((Cube.from_literals({0: True, 1: True}, 2),), 2)
    return (cover.canonical_key(), delta_on, delta_off, None)


AND_VECTOR = WeightThresholdVector((1, 1), 2)


@pytest.fixture
def daemon():
    app = ServeApp(port=0)  # no cache_dir: the memory tier backs /cache
    app.start_background()
    try:
        yield app
    finally:
        app.shutdown()


class TestHttpRoundTrip:
    def test_put_get_and_absent(self, daemon):
        client = NetworkCacheClient(daemon.url)
        assert client.get("nothing-here") is ABSENT
        assert client.absent == 1
        assert client.put("k1", [1, 2, 3]) is True
        assert client.put("k1", [9, 9, 9]) is False  # first write wins
        assert client.get("k1") == [1, 2, 3]
        assert client.get("k1|weird/chars?&=") is ABSENT  # quoting holds
        assert len(client) == 1

    def test_non_threshold_verdicts_round_trip(self, daemon):
        client = NetworkCacheClient(daemon.url)
        client.put("k-none", None)
        assert client.get("k-none") is None
        assert client.hits == 1

    def test_fingerprint_mismatch_is_rejected_with_412(self, daemon):
        good = NetworkCacheClient(daemon.url)
        good.put("k1", [1, 2, 3])
        stale = NetworkCacheClient(daemon.url, fingerprint="v0-old-canon")
        assert stale.get("k1") is ABSENT
        assert stale.fingerprint_rejects == 1
        assert stale.put("k2", [4]) is False
        assert stale.put_errors == 1

    def test_unreachable_daemon_degrades_to_misses(self):
        client = NetworkCacheClient("http://127.0.0.1:9")  # closed port
        assert client.get("k1") is ABSENT
        assert client.get_errors == 1
        assert client.put("k1", [1]) is False
        assert client.put_errors == 1

    def test_etag_mismatch_is_rejected(self, daemon):
        client = NetworkCacheClient(daemon.url)
        client.put("k1", [1, 2, 3])

        real_request = client.transport.request

        def tampered(method, path, body=None, headers=None):
            status, raw, resp_headers = real_request(method, path, body, headers)
            if method == "GET":
                resp_headers = dict(resp_headers)
                resp_headers["ETag"] = values_etag([6, 6, 6])
            return status, raw, resp_headers

        client.transport.request = tampered
        assert client.get("k1") is ABSENT
        assert client.etag_rejects == 1


class TestVerifyBeforeTrust:
    """Served vectors flow through the store's transform+verify+reject path."""

    def _store(self, url: str) -> ResultStore:
        return ResultStore(persistent=NetworkCacheClient(url))

    def test_cross_store_sharing_re_verifies(self, daemon):
        writer = self._store(daemon.url)
        writer.put_vector(and_key(), AND_VECTOR)
        assert writer.persistent.puts == 1

        reader = self._store(daemon.url)
        found = reader.get_vector(and_key())
        assert found is not _MISSING
        assert tuple(found.weights) == (1, 1)
        assert reader.stats.persistent_hits == 1
        assert reader.stats.transform_rejects == 0

    def test_corrupted_payload_is_rejected_not_trusted(
        self, daemon, monkeypatch
    ):
        writer = self._store(daemon.url)
        writer.put_vector(and_key(), AND_VECTOR)

        # net-corrupt injects after the ETag check, so only the semantic
        # re-verification can catch it — which is the property under test.
        monkeypatch.setenv("TELS_CHAOS", "net-corrupt=1.0:7")
        reader = self._store(daemon.url)
        # The corrupt entry surfaces as a miss, never as a wrong gate.
        assert reader.get_vector(and_key()) is _MISSING
        assert reader.stats.transform_rejects == 1
        assert reader.stats.persistent_misses == 1

    def test_daemon_stats_count_cache_traffic(self, daemon):
        store = self._store(daemon.url)
        store.put_vector(and_key(), AND_VECTOR)
        store.get_vector(and_key(2, 2))  # a miss
        counters = daemon.manager.stats()["network_cache"]
        assert counters["installs"] == 1
        assert counters["misses"] >= 1
