"""Redundancy detection, per-candidate verification, and verified apply."""

from __future__ import annotations

from repro.analysis import (
    analyze_threshold_network,
    apply_removals,
    dontcare_analysis,
    find_candidates,
    interval_analysis,
    threshold_to_boolean,
    verify_removals,
)
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.core.verify import verify_threshold_network
from repro.network.simulate import equivalent_threshold_networks


def _candidates(network):
    interval = interval_analysis(network)
    dontcare = dontcare_analysis(network, interval=interval)
    return find_candidates(network, interval, dontcare)


class TestFindCandidates:
    def test_planted_redundancies_found(self, stressor):
        kinds = {(f.kind, f.gate, f.fanin) for f in _candidates(stressor)}
        assert ("constant-gate", "g2", None) in kinds
        assert ("redundant-fanin", "g1", "b") in kinds

    def test_clean_network_yields_nothing(self, clean):
        assert _candidates(clean) == []

    def test_zero_fanin_constants_are_not_flagged(self):
        # <;0> is a deliberate synthesis constant, not redundancy.
        net = ThresholdNetwork("const")
        net.add_input("x")
        net.add_gate(ThresholdGate("one", (), WeightThresholdVector((), 0)))
        net.add_gate(
            ThresholdGate(
                "root", ("x", "one"), WeightThresholdVector((1, 1), 2)
            )
        )
        net.add_output("root")
        findings = _candidates(net)
        assert all(f.gate != "one" or f.kind != "constant-gate" for f in findings)


class TestVerifyRemovals:
    def test_planted_findings_verify(self, stressor):
        verified = verify_removals(stressor, _candidates(stressor))
        assert verified and all(f.verified for f in verified)

    def test_verification_is_against_the_original(self, stressor):
        # verify_removals must not mutate its input network.
        before = {g.name: g for g in stressor.gates()}
        verify_removals(stressor, _candidates(stressor))
        assert {g.name: g for g in stressor.gates()} == before


class TestApplyRemovals:
    def test_apply_preserves_equivalence(self, stressor):
        result = analyze_threshold_network(stressor)
        rewritten, applied = apply_removals(
            stressor, result.verified_findings
        )
        assert len(applied) == 2
        assert equivalent_threshold_networks(stressor, rewritten)

    def test_applied_network_lost_the_redundancy(self, stressor):
        result = analyze_threshold_network(stressor)
        rewritten, _ = apply_removals(stressor, result.verified_findings)
        assert rewritten.gate("g1").inputs == ("a",)
        assert rewritten.gate("g2").fanin == 0

    def test_nothing_to_apply_returns_original(self, clean):
        result = analyze_threshold_network(clean)
        rewritten, applied = apply_removals(clean, result.verified_findings)
        assert applied == []
        assert rewritten is clean

    def test_bogus_finding_is_rejected_not_applied(self, clean):
        from repro.analysis.redundancy import RemovalFinding

        bogus = [
            RemovalFinding(
                kind="redundant-fanin", gate="and1", fanin="b", verified=True
            )
        ]
        rewritten, applied = apply_removals(clean, bogus)
        # Dropping b from the AND changes the function: the cumulative
        # equivalence check must refuse it.
        assert applied == []
        assert rewritten is clean


class TestThresholdToBoolean:
    def test_mirror_is_equivalent(self, stressor):
        golden = threshold_to_boolean(stressor)
        assert verify_threshold_network(golden, stressor)
        assert golden.inputs == stressor.inputs
        assert golden.outputs == stressor.outputs
