"""The abstract domains: lattice laws and sum-interval arithmetic."""

from __future__ import annotations

import pytest

from repro.analysis.domains import (
    ONE,
    UNKNOWN,
    ZERO,
    BoolInterval,
    SumInterval,
    weighted_sum_interval,
)

ELEMENTS = (ZERO, ONE, UNKNOWN)


class TestBoolInterval:
    def test_constants(self):
        assert BoolInterval.constant(0) == ZERO
        assert BoolInterval.constant(1) == ONE
        assert BoolInterval.constant(True) == ONE
        assert ZERO.is_constant and ONE.is_constant
        assert not UNKNOWN.is_constant
        assert ZERO.value == 0 and ONE.value == 1 and UNKNOWN.value is None

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            BoolInterval(1, 0)
        with pytest.raises(ValueError):
            BoolInterval(0, 2)

    def test_join_is_hull(self):
        assert ZERO.join(ONE) == UNKNOWN
        assert ZERO.join(ZERO) == ZERO
        assert UNKNOWN.join(ONE) == UNKNOWN

    def test_join_laws(self):
        # Commutative, associative, idempotent, UNKNOWN is top.
        for a in ELEMENTS:
            assert a.join(a) == a
            assert a.join(UNKNOWN) == UNKNOWN
            for b in ELEMENTS:
                assert a.join(b) == b.join(a)
                for c in ELEMENTS:
                    assert a.join(b).join(c) == a.join(b.join(c))

    def test_order_is_inclusion(self):
        assert ZERO <= UNKNOWN
        assert ONE <= UNKNOWN
        assert not (UNKNOWN <= ZERO)
        assert not (ZERO <= ONE)

    def test_join_is_least_upper_bound(self):
        for a in ELEMENTS:
            for b in ELEMENTS:
                j = a.join(b)
                assert a <= j and b <= j


class TestSumInterval:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SumInterval(1, 0)

    def test_contains_threshold_half_open(self):
        s = SumInterval(0, 3)
        assert not s.contains_threshold(0)  # lo itself never separates
        assert s.contains_threshold(1)
        assert s.contains_threshold(3)
        assert not s.contains_threshold(4)

    def test_point_interval_contains_nothing(self):
        assert not SumInterval(2, 2).contains_threshold(2)


class TestWeightedSumInterval:
    def test_all_unknown_spans_negative_to_positive(self):
        s = weighted_sum_interval((2, -3), (UNKNOWN, UNKNOWN))
        assert (s.lo, s.hi) == (-3, 2)

    def test_constants_pin_the_sum(self):
        s = weighted_sum_interval((2, -3), (ONE, ZERO))
        assert (s.lo, s.hi) == (2, 2)

    def test_mixed(self):
        s = weighted_sum_interval((1, 1, -2), (ONE, UNKNOWN, UNKNOWN))
        assert (s.lo, s.hi) == (-1, 2)

    def test_empty_weights(self):
        s = weighted_sum_interval((), ())
        assert (s.lo, s.hi) == (0, 0)
