"""Shared fixture networks for the analysis test suite."""

from __future__ import annotations

import pytest

from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)


def build_stressor() -> ThresholdNetwork:
    """Planted redundancies: ``g1 = <2,1;2>(a,b) == a`` (fanin ``b``
    redundant) and ``g2 = <1,1;0>(a,c) == 1`` (constant gate)."""
    net = ThresholdNetwork("stressor")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_gate(
        ThresholdGate("g1", ("a", "b"), WeightThresholdVector((2, 1), 2))
    )
    net.add_gate(
        ThresholdGate("g2", ("a", "c"), WeightThresholdVector((1, 1), 0))
    )
    net.add_output("g1")
    net.add_output("g2")
    return net


def build_clean() -> ThresholdNetwork:
    """A small irredundant network: two-input AND feeding a two-input OR."""
    net = ThresholdNetwork("clean")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_gate(
        ThresholdGate("and1", ("a", "b"), WeightThresholdVector((1, 1), 2))
    )
    net.add_gate(
        ThresholdGate("or1", ("and1", "c"), WeightThresholdVector((1, 1), 1))
    )
    net.add_output("or1")
    return net


@pytest.fixture
def stressor() -> ThresholdNetwork:
    return build_stressor()


@pytest.fixture
def clean() -> ThresholdNetwork:
    return build_clean()
