"""The generic worklist fixpoint engine: forward and backward passes."""

from __future__ import annotations

from repro.analysis.domains import UNKNOWN, ZERO, BoolInterval
from repro.analysis.engine import backward_fixpoint, forward_fixpoint
from repro.analysis.interval import gate_transfer
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)

from tests.analysis.conftest import build_clean


def test_forward_fixpoint_single_sweep_on_dag(clean):
    fixed = forward_fixpoint(
        clean,
        gate_transfer,
        {pi: UNKNOWN for pi in clean.inputs},
        BoolInterval.join,
    )
    # Topological seeding visits every gate exactly once on a DAG.
    assert fixed.stats.visits == 2
    assert fixed.stats.updates == 2
    assert fixed.values["or1"] == UNKNOWN


def test_forward_fixpoint_propagates_pinned_inputs():
    clean = build_clean()
    fixed = forward_fixpoint(
        clean,
        gate_transfer,
        {"a": ZERO, "b": UNKNOWN, "c": ZERO},
        BoolInterval.join,
    )
    # a=0 kills the AND, c=0 then kills the OR: both proven constant 0.
    assert fixed.values["and1"] == ZERO
    assert fixed.values["or1"] == ZERO


def test_forward_fixpoint_counts_signals(clean):
    fixed = forward_fixpoint(
        clean,
        gate_transfer,
        {pi: UNKNOWN for pi in clean.inputs},
        BoolInterval.join,
    )
    assert fixed.stats.signals == 5  # 3 inputs + 2 gates


def test_backward_fixpoint_marks_observable_cone():
    # d1 feeds the output gate; d2 dangles (still in the gate list but
    # reaching no primary output).
    net = ThresholdNetwork("bwd")
    for pi in ("a", "b"):
        net.add_input(pi)
    net.add_gate(
        ThresholdGate("d1", ("a", "b"), WeightThresholdVector((1, 1), 2))
    )
    net.add_gate(
        ThresholdGate("d2", ("a", "b"), WeightThresholdVector((1, 1), 1))
    )
    net.add_gate(
        ThresholdGate("root", ("d1",), WeightThresholdVector((1,), 1))
    )
    net.add_output("root")

    # Demand domain: plain bools (demanded / not demanded); a reader
    # passes its own demand to every fanin.
    fixed = backward_fixpoint(
        net,
        lambda gate, demand, fanin: demand,
        output_value=True,
        bottom=False,
        join=lambda a, b: a or b,
    )
    assert fixed.values["root"] is True
    assert fixed.values["d1"] is True
    assert fixed.values["d2"] is False
    assert fixed.values["a"] is True  # demanded through d1


def test_backward_fixpoint_output_inputs_are_demanded():
    net = ThresholdNetwork("po-pi")
    net.add_input("a")
    net.add_output("a")
    fixed = backward_fixpoint(
        net,
        lambda gate, demand, fanin: demand,
        output_value=True,
        bottom=False,
        join=lambda a, b: a or b,
    )
    assert fixed.values["a"] is True
