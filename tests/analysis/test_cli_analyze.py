"""``tels analyze``: multi-file aggregation, SARIF, and --apply."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io.thblif import read_thblif, write_thblif
from repro.network.simulate import equivalent_threshold_networks

from tests.analysis.conftest import build_clean, build_stressor

BLIF = """.model toy
.inputs a b c
.outputs f
.names a b x
11 1
.names x c f
1- 1
-1 1
.end
"""


@pytest.fixture
def stressor_file(tmp_path):
    path = tmp_path / "stressor.th"
    write_thblif(build_stressor(), path)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.th"
    write_thblif(build_clean(), path)
    return str(path)


class TestAnalyzeSingleFile:
    def test_text_report(self, stressor_file, capsys):
        assert main(["analyze", stressor_file]) == 0
        out = capsys.readouterr().out
        # Legacy structural sections stay, the analysis block is appended.
        assert "fanin histogram" in out
        assert "removal candidates: 2 (2 verified)" in out
        assert "TLA301" in out and "TLA302" in out

    def test_json_format(self, stressor_file, capsys):
        assert main(["analyze", stressor_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["files"]) == 1
        assert payload["files"][0]["file"] == stressor_file
        assert payload["files"][0]["verified_findings"] == 2
        assert payload["unverified_findings"] == 0

    def test_blif_input_synthesizes_first(self, tmp_path, capsys):
        path = tmp_path / "toy.blif"
        path.write_text(BLIF)
        assert main(["analyze", str(path)]) == 0
        assert "analysis of" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.th")]) == 2


class TestAnalyzeMultiFile:
    def test_two_files_aggregate(self, stressor_file, clean_file, capsys):
        assert main(["analyze", stressor_file, clean_file]) == 0
        out = capsys.readouterr().out
        assert "analysis of stressor" in out
        assert "analysis of clean" in out
        assert out.count("=" * 60) == 1  # one separator between two files

    def test_directory_input_expands(self, stressor_file, clean_file, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "analysis of stressor" in out and "analysis of clean" in out

    def test_sarif_lists_per_file_artifacts(
        self, stressor_file, clean_file, tmp_path, capsys
    ):
        assert main(["analyze", str(tmp_path), "--format", "sarif"]) == 0
        sarif = json.loads(capsys.readouterr().out)
        run = sarif["runs"][0]
        uris = {a["location"]["uri"] for a in run["artifacts"]}
        assert uris == {stressor_file, clean_file}
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"TLA301", "TLA302", "TLA303", "TLA304"} <= rule_ids
        # Every result points at the artifact it came from.
        result_uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in run["results"]
        }
        assert stressor_file in result_uris


class TestAnalyzeApply:
    def test_apply_rewrites_in_place(self, stressor_file, capsys):
        original = read_thblif(stressor_file)
        assert main(["analyze", stressor_file, "--apply"]) == 0
        out = capsys.readouterr().out
        assert "2 removal(s) applied" in out
        assert "equivalence verified" in out
        rewritten = read_thblif(stressor_file)
        assert rewritten.gate("g1").inputs == ("a",)
        assert equivalent_threshold_networks(original, rewritten)

    def test_apply_to_output_path(self, stressor_file, tmp_path, capsys):
        out_path = tmp_path / "rewritten.th"
        assert main(
            ["analyze", stressor_file, "--apply", "-o", str(out_path)]
        ) == 0
        assert out_path.exists()
        original = read_thblif(stressor_file)
        assert original.gate("g1").inputs == ("a", "b")  # source untouched

    def test_apply_clean_network_is_a_noop(self, clean_file, capsys):
        before = open(clean_file).read()
        assert main(["analyze", clean_file, "--apply"]) == 0
        assert "no verified removals" in capsys.readouterr().out
        assert open(clean_file).read() == before

    def test_apply_rejects_multiple_files(
        self, stressor_file, clean_file, capsys
    ):
        assert (
            main(["analyze", stressor_file, clean_file, "--apply"]) == 2
        )

    def test_applied_file_reanalyzes_clean(self, stressor_file, capsys):
        assert main(["analyze", stressor_file, "--apply"]) == 0
        capsys.readouterr()
        assert main(["analyze", stressor_file]) == 0
        out = capsys.readouterr().out
        assert "removal candidates: none" in out


class TestLintMultiFile:
    def test_lint_accepts_multiple_files(
        self, stressor_file, clean_file, capsys
    ):
        # TLM102 warnings on the stressor are findings, not errors, so
        # the default (non-strict) exit code stays 0.
        assert main(["lint", stressor_file, clean_file]) == 0
        out = capsys.readouterr().out
        assert "2 files" in out  # one aggregated summary line
        assert "stressor.th" in out

    def test_lint_directory_with_analysis_flag(
        self, stressor_file, clean_file, tmp_path, capsys
    ):
        code = main(["lint", str(tmp_path), "--analysis", "--strict"])
        out = capsys.readouterr().out
        assert code == 1  # TLA warnings on the stressor gate under strict
        assert "TLA302" in out
