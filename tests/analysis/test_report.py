"""The analysis driver, its dict serialization, and the lint bridge."""

from __future__ import annotations

import json

from repro.analysis import (
    AnalysisOptions,
    analyze_threshold_network,
    format_analysis_report,
)
from repro.lint.diagnostics import LintOptions
from repro.lint.runner import run_lint


class TestAnalyzeThresholdNetwork:
    def test_end_to_end_on_stressor(self, stressor):
        result = analyze_threshold_network(stressor)
        assert result.network == "stressor"
        assert result.gate_model == "ltg"
        assert result.dontcare.exact
        assert len(result.verified_findings) == 2
        assert result.unverified_findings == []
        assert result.interval.constant_gates == {"g2": 1}

    def test_verify_off_leaves_candidates_unverified(self, stressor):
        result = analyze_threshold_network(
            stressor, AnalysisOptions(verify=False)
        )
        assert result.findings
        assert result.verified_findings == []

    def test_to_dict_is_json_clean(self, stressor):
        payload = analyze_threshold_network(stressor).to_dict()
        round_trip = json.loads(json.dumps(payload))
        assert round_trip["verified_findings"] == 2
        assert round_trip["unverified_findings"] == 0
        assert round_trip["dontcare_exact"] is True
        assert round_trip["certificate"]["network"] == "stressor"
        assert round_trip["fixpoint"]["signals"] == 5

    def test_text_report_mentions_everything(self, stressor):
        text = format_analysis_report(analyze_threshold_network(stressor))
        assert "analysis of stressor" in text
        assert "removal candidates: 2 (2 verified)" in text
        assert "constant 1" in text
        assert "stuck output: g2 = 1" in text

    def test_clean_network_reports_no_candidates(self, clean):
        result = analyze_threshold_network(clean)
        assert result.findings == []
        assert "removal candidates: none" in format_analysis_report(result)


class TestLintBridge:
    def run(self, network, analysis=None):
        return run_lint(
            network, LintOptions(analysis=True), analysis=analysis
        )

    def test_tla_rules_fire_on_stressor(self, stressor):
        report = self.run(stressor)
        rules = {d.rule_id for d in report.diagnostics}
        assert "TLA301" in rules  # constant gate
        assert "TLA302" in rules  # redundant fanin

    def test_tla_rules_silent_without_analysis_option(self, stressor):
        report = run_lint(stressor, LintOptions())
        assert not any(
            d.rule_id.startswith("TLA3") for d in report.diagnostics
        )

    def test_precomputed_result_is_reused(self, stressor):
        result = analyze_threshold_network(stressor)
        report = self.run(stressor, analysis=result)
        rules = {d.rule_id for d in report.diagnostics}
        assert "TLA301" in rules and "TLA302" in rules

    def test_verified_marker_in_messages(self, stressor):
        report = self.run(stressor)
        redundant = [
            d for d in report.diagnostics if d.rule_id == "TLA302"
        ]
        assert redundant
        assert all("verified by packed equivalence" in d.message for d in redundant)

    def test_clean_network_is_tla_silent(self, clean):
        report = self.run(clean)
        assert not any(
            d.rule_id.startswith("TLA3") for d in report.diagnostics
        )
