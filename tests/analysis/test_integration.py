"""Analysis surfaced through the engine post-pass and the serve schema."""

from __future__ import annotations

from repro.benchgen.paper_examples import motivational_network
from repro.core.synthesis import SynthesisOptions
from repro.engine.scheduler import run_synthesis
from repro.network.scripts import prepare_tels
from repro.serve.schemas import report_to_dict, validate_options


def _run(analyze: bool):
    net = prepare_tels(motivational_network())
    return run_synthesis(net, SynthesisOptions(analyze=analyze))


class TestEnginePostPass:
    def test_analyze_off_by_default(self):
        result = _run(analyze=False)
        assert result.report.analysis is None
        assert result.trace.analysis_removals is None
        assert result.trace.network_analysis_s == 0.0

    def test_analyze_populates_report_and_trace(self):
        result = _run(analyze=True)
        analysis = result.report.analysis
        assert analysis is not None
        assert analysis.network == result.network.name
        # Synthesis output should carry no redundancy the analyzer can
        # prove away — and nothing unverified may survive the post-pass.
        assert analysis.unverified_findings == []
        trace = result.trace
        assert trace.analysis_removals == len(analysis.verified_findings)
        assert trace.analysis_min_slack == analysis.certificate.min_slack
        assert trace.network_analysis_s > 0.0

    def test_trace_summary_mentions_analysis(self):
        result = _run(analyze=True)
        summary = result.trace.format_summary()
        assert "analysis:" in summary
        assert "verified removal" in summary


class TestServeSchema:
    def test_analyze_is_an_accepted_option(self):
        assert validate_options({"analyze": True}) == {"analyze": True}

    def test_report_dict_gains_analysis_section(self):
        result = _run(analyze=True)
        payload = report_to_dict(
            result.network, result.report, source_verified=True, wall_s=0.1
        )
        section = payload["analysis"]
        assert section["network"] == result.network.name
        assert section["unverified_findings"] == 0
        assert "certificate" in section and "fixpoint" in section

    def test_report_dict_omits_analysis_when_off(self):
        result = _run(analyze=False)
        payload = report_to_dict(
            result.network, result.report, source_verified=True, wall_s=0.1
        )
        assert "analysis" not in payload
