"""Robustness certificates: margins, slack, and the perturbation bound."""

from __future__ import annotations

import math

from repro.analysis import build_certificate
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)


def _single_gate(vector, delta_on=0, delta_off=1, fanin=2):
    net = ThresholdNetwork("one")
    inputs = tuple(f"x{i}" for i in range(fanin))
    for pi in inputs:
        net.add_input(pi)
    net.add_gate(
        ThresholdGate(
            "g", inputs, vector, delta_on=delta_on, delta_off=delta_off
        )
    )
    net.add_output("g")
    return net


class TestGateMargins:
    def test_and_gate_margins(self, clean):
        cert = build_certificate(clean)
        by_name = {g.gate: g for g in cert.gates}
        # AND <1,1;2>: ON sums {2} (margin 0), OFF sums {0,1} (margin 1).
        assert by_name["and1"].on_margin == 0
        assert by_name["and1"].off_margin == 1
        # delta_on=0 / delta_off=1 defaults: slack 0 on both sides.
        assert by_name["and1"].slack == 0

    def test_wide_margin_gate(self):
        net = _single_gate(WeightThresholdVector((3, 3), 3))
        cert = build_certificate(net)
        (gate,) = cert.gates
        # ON sums {3, 6}: margin 0... threshold 3 reached exactly at one
        # input high; OFF sum {0}: margin 3 below threshold -> off margin
        # |0 - 3| - 1 + 1 = 3.
        assert gate.on_margin == 0
        assert gate.off_margin == 3

    def test_slack_flags_violated_tolerances(self):
        # delta_on=2 demanded, but the ON margin is 0: negative slack.
        net = _single_gate(WeightThresholdVector((1, 1), 2), delta_on=2)
        cert = build_certificate(net)
        assert cert.min_slack == -2
        assert not cert.meets_tolerances
        assert cert.weakest_gate == "g"

    def test_perturbation_bound_scales_with_fanin(self):
        net = _single_gate(WeightThresholdVector((3, 3), 3))
        cert = build_certificate(net)
        # min margin 0 over fanin 2.
        assert cert.perturbation_bound == 0.0

    def test_constant_gate_has_infinite_bound(self):
        net = ThresholdNetwork("const")
        net.add_input("x")
        net.add_gate(ThresholdGate("one", (), WeightThresholdVector((), 0)))
        net.add_output("one")
        net.add_output("x")
        cert = build_certificate(net)
        (gate,) = cert.gates
        assert gate.perturbation_bound == math.inf
        assert cert.perturbation_bound == math.inf

    def test_wide_gates_are_skipped_not_trusted(self, clean):
        cert = build_certificate(clean, max_enumeration_fanin=1)
        assert set(cert.skipped) == {"and1", "or1"}
        assert not cert.complete
        assert cert.min_slack is None


class TestFlashModel:
    def test_drift_raises_required_margins(self):
        # Flash drift 0.25 with max|w|=3 demands ceil(0.75)=1 on both
        # sides; the ON margin of <3,3;3> is 0 -> negative slack under
        # flash even though ltg accepts the same gate.
        net = _single_gate(WeightThresholdVector((3, 3), 3))
        ltg = build_certificate(net, gate_model="ltg")
        flash = build_certificate(net, gate_model="flash")
        assert ltg.meets_tolerances
        assert flash.min_slack < ltg.min_slack
        assert not flash.meets_tolerances

    def test_to_dict_serializes_infinity_as_none(self):
        net = ThresholdNetwork("const")
        net.add_gate(ThresholdGate("one", (), WeightThresholdVector((), 0)))
        net.add_output("one")
        cert = build_certificate(net)
        assert cert.to_dict()["perturbation_bound"] is None
