"""Interval and don't-care analyses over planted-fact networks."""

from __future__ import annotations

from repro.analysis.domains import ONE, ZERO
from repro.analysis.dontcare import dontcare_analysis
from repro.analysis.interval import interval_analysis
from repro.core.threshold import (
    MultiThresholdVector,
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)


class TestIntervalAnalysis:
    def test_constant_gate_detected(self, stressor):
        result = interval_analysis(stressor)
        # g2 = <1,1;0> fires on every sum in [0, 2]: constant 1.
        assert result.constant_gates == {"g2": 1}
        assert result.stuck_outputs == {"g2": 1}
        # g1 genuinely depends on a.
        assert "g1" not in result.constant_gates

    def test_sum_intervals_recorded(self, stressor):
        result = interval_analysis(stressor)
        assert (result.sums["g1"].lo, result.sums["g1"].hi) == (0, 3)
        assert (result.sums["g2"].lo, result.sums["g2"].hi) == (0, 2)

    def test_clean_network_has_no_facts(self, clean):
        result = interval_analysis(clean)
        assert result.constant_gates == {}
        assert result.stuck_outputs == {}

    def test_pinned_inputs_propagate(self, clean):
        result = interval_analysis(clean, input_values={"a": ONE, "b": ONE})
        # a=b=1 forces the AND, which forces the OR.
        assert result.constant_gates == {"and1": 1, "or1": 1}

    def test_constants_cascade_through_readers(self):
        # const1 = <;0> is a deliberate constant; the reader's sum interval
        # collapses around it and proves the reader constant too.
        net = ThresholdNetwork("cascade")
        net.add_input("x")
        net.add_gate(ThresholdGate("const1", (), WeightThresholdVector((), 0)))
        net.add_gate(
            ThresholdGate(
                "reader", ("const1", "x"), WeightThresholdVector((2, 1), 2)
            )
        )
        net.add_output("reader")
        result = interval_analysis(net)
        assert result.constant_gates["const1"] == 1
        assert result.constant_gates["reader"] == 1

    def test_multi_threshold_parity_constant(self):
        # Sum range [0,2] with thresholds (1,) crossed iff sum>=1; with
        # pinned input the parity is decided.
        net = ThresholdNetwork("mt")
        net.add_input("x")
        net.add_gate(
            ThresholdGate(
                "p", ("x", "x2"), MultiThresholdVector((1, 1), (1, 2))
            )
        )
        net.add_input("x2")
        net.add_output("p")
        result = interval_analysis(net, input_values={"x": ONE, "x2": ONE})
        # sum pinned to 2: crossings at 1 and 2 -> parity even... 2 crossed
        # thresholds -> fires False.
        assert result.constant_gates["p"] == 0


class TestDontCareAnalysis:
    def test_exact_mode_on_small_networks(self, stressor):
        result = dontcare_analysis(stressor)
        assert result.exact
        assert result.width == 8  # 2**3 inputs
        assert result.resimulations == 2

    def test_observable_gates_have_nonzero_masks(self, clean):
        result = dontcare_analysis(clean)
        assert not result.observable["or1"].is_zero()
        assert result.unobservable_gates == ()

    def test_unobservable_gate_detected(self):
        # shadow's output is consumed by a gate that ignores it: the
        # reader <2,1;2>(a, shadow) equals a regardless of shadow.
        net = ThresholdNetwork("shadowed")
        for pi in ("a", "b"):
            net.add_input(pi)
        net.add_gate(
            ThresholdGate("shadow", ("a", "b"), WeightThresholdVector((1, 1), 2))
        )
        net.add_gate(
            ThresholdGate(
                "root", ("a", "shadow"), WeightThresholdVector((2, 1), 2)
            )
        )
        net.add_output("root")
        result = dontcare_analysis(net)
        assert "shadow" in result.unobservable_gates
        assert result.observable["shadow"].is_zero()

    def test_unreachable_minterms_excluded_from_care(self):
        # twin1 == twin2 == a, so the reader's fanin pairs (0,1)/(1,0)
        # never occur: care keeps only minterms 00 and 11.
        net = ThresholdNetwork("twins")
        net.add_input("a")
        net.add_gate(
            ThresholdGate("twin1", ("a",), WeightThresholdVector((1,), 1))
        )
        net.add_gate(
            ThresholdGate("twin2", ("a",), WeightThresholdVector((1,), 1))
        )
        net.add_gate(
            ThresholdGate(
                "root", ("twin1", "twin2"), WeightThresholdVector((1, 1), 2)
            )
        )
        net.add_output("root")
        result = dontcare_analysis(net)
        assert result.care["root"] == 0b1001  # minterms {00, 11}

    def test_abstract_fallback_is_sound_superset(self, stressor):
        # Forcing the abstract path: care masks must cover the exact ones.
        exact = dontcare_analysis(stressor)
        abstract = dontcare_analysis(stressor, max_table_vars=2)
        assert not abstract.exact
        assert abstract.width == 0
        assert abstract.unobservable_gates == ()  # never claims exactness
        for name, mask in exact.care.items():
            assert mask & ~abstract.care[name] == 0

    def test_abstract_care_restricted_by_interval(self, stressor):
        interval = interval_analysis(
            stressor, input_values={"a": ZERO}
        )
        result = dontcare_analysis(
            stressor, max_table_vars=2, interval=interval
        )
        # g1's fanin a is pinned to 0: only minterms with bit0=0 stay.
        assert result.care["g1"] == 0b0101
