"""Regenerate the pre-refactor differential baseline for the ltg model.

Run from the repo root::

    PYTHONPATH=src python tests/gates/make_golden.py

Only regenerate when the default (``ltg``) synthesis behavior is changed
*intentionally* — the golden file pins gate counts, areas, per-gate margins,
and the persistent NP-canonical cache keys of the Table-I bench subset, and
``tests/gates/test_differential.py`` fails when any of them drift.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.benchgen.extended import build_extended_benchmark
from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.network.scripts import prepare_tels

BENCH_SUBSET = ("cm152a", "cm85a", "cmb", "comp")
GOLDEN_PATH = Path(__file__).with_name("golden_ltg.json")


def cache_keys(cache_dir: str) -> list[str]:
    """Entry keys of the persistent cache a run left behind."""
    keys: list[str] = []
    for path in sorted(Path(cache_dir).glob("*.jsonl")):
        for line in path.read_text().splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "k" in record:
                keys.append(record["k"])
    return sorted(keys)


def capture(name: str, jobs: int = 1) -> dict:
    source = build_extended_benchmark(name)
    with tempfile.TemporaryDirectory() as tmp:
        net, _report = synthesize_with_report(
            prepare_tels(source),
            SynthesisOptions(psi=3, seed=0),
            jobs=jobs,
            cache_dir=tmp,
        )
        stats = network_stats(net)
        margins = sorted(
            [list(gate.margins()) for gate in net.gates()],
        )
        return {
            "gates": stats.gates,
            "levels": stats.levels,
            "area": stats.area,
            "margins": margins,
            "cache_keys": cache_keys(tmp),
        }


def main() -> None:
    golden = {name: capture(name) for name in BENCH_SUBSET}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    for name, row in golden.items():
        print(
            f"{name}: {row['gates']} gates, area {row['area']}, "
            f"{len(row['cache_keys'])} cache keys"
        )


if __name__ == "__main__":
    main()
