"""Cross-model cache isolation: backends never share persistent entries.

A vector solved under one gate model is not evidence under another — a
flash gate has device constraints an LTG entry never checked, and an MT
entry is not even the same shape.  The entry keys carry the model
fingerprint (ltg stays un-suffixed for compatibility), so a cache warmed
under one model must answer *zero* persistent lookups under any other.
"""

from __future__ import annotations

import pytest

from repro.boolean.function import BooleanFunction
from repro.cache.store import entry_key
from repro.core.identify import is_threshold_function
from repro.engine.store import ResultStore
from repro.gates import get_model, model_names

#: Majority-of-three: a threshold function every backend can realize, so
#: any cross-model hit would be a *silent* wrong answer, not a crash.
MAJ3 = "a b + a c + b c"


def test_entry_keys_are_disjoint_per_fingerprint():
    base = entry_key("3:2.0", 0, 1, None)
    keys = {base}
    for name in model_names():
        if name == "ltg":
            continue
        fp = get_model(name).fingerprint
        keys.add(entry_key("3:2.0", 0, 1, None, model=fp))
    assert len(keys) == 1 + sum(1 for n in model_names() if n != "ltg")
    assert base.count("|") == 3  # historical un-suffixed ltg key


@pytest.mark.parametrize("warm_model", ("ltg", "flash"))
def test_warm_cache_is_invisible_to_other_models(tmp_path, warm_model):
    cache_dir = str(tmp_path / warm_model)
    assert (
        is_threshold_function(
            BooleanFunction.parse(MAJ3),
            cache_dir=cache_dir,
            gate_model=warm_model,
        )
        is not None
    )
    for other in model_names():
        store = ResultStore.with_cache_dir(cache_dir)
        result = is_threshold_function(
            BooleanFunction.parse(MAJ3), store=store, gate_model=other
        )
        assert result is not None
        if other == warm_model:
            assert store.stats.persistent_hits > 0
        else:
            assert store.stats.persistent_hits == 0


def test_cross_model_synthesis_never_hits_a_foreign_cache(tmp_path):
    # Network-level version of the same invariant: warm the cache with a
    # full ltg synthesis, then synthesize under multi-threshold against a
    # *read-only* view of the same directory.  Read-only matters: a live
    # cache would also hold the MT run's own fresh entries, whose
    # NP-transformed self-hits are legitimate — here every entry on disk
    # is foreign, so every persistent lookup must miss.
    from repro.benchgen.extended import build_extended_benchmark
    from repro.cache.store import open_cache
    from repro.core.synthesis import SynthesisOptions, synthesize_with_report
    from repro.network.scripts import prepare_tels

    cache_dir = str(tmp_path)
    synthesize_with_report(
        prepare_tels(build_extended_benchmark("cm152a")),
        SynthesisOptions(psi=3, seed=0),
        cache_dir=cache_dir,
    )
    warm = ResultStore.with_cache_dir(cache_dir)
    synthesize_with_report(
        prepare_tels(build_extended_benchmark("cm152a")),
        SynthesisOptions(psi=3, seed=0),
        store=warm,
    )
    assert warm.stats.persistent_hits > 0  # the cache itself works

    store = ResultStore(persistent=open_cache(cache_dir, read_only=True))
    synthesize_with_report(
        prepare_tels(build_extended_benchmark("cm152a")),
        SynthesisOptions(psi=3, seed=0, gate_model="multi-threshold"),
        store=store,
    )
    assert store.stats.persistent_hits == 0
    assert store.stats.persistent_misses > 0
