"""Differential guard: the default model must match the pre-refactor seed.

``golden_ltg.json`` (regenerated only via ``make_golden.py``) pins the
Table-I bench subset as synthesized *before* the gate-model refactor:
gate counts, areas, the sorted per-gate margin multiset, and the
persistent NP-canonical cache keys.  Any drift under the default ``ltg``
model — serial or parallel — means the refactor changed behavior it was
required to preserve.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest

from repro.benchgen.extended import build_extended_benchmark
from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.network.scripts import prepare_tels

GOLDEN = json.loads(
    Path(__file__).with_name("golden_ltg.json").read_text()
)
BENCH_SUBSET = tuple(sorted(GOLDEN))


def capture(name: str, jobs: int = 1) -> dict:
    """Mirror of ``make_golden.capture`` — same options, same shape."""
    source = build_extended_benchmark(name)
    with tempfile.TemporaryDirectory() as tmp:
        net, _report = synthesize_with_report(
            prepare_tels(source),
            SynthesisOptions(psi=3, seed=0),
            jobs=jobs,
            cache_dir=tmp,
        )
        stats = network_stats(net)
        margins = sorted(list(gate.margins()) for gate in net.gates())
        keys: list[str] = []
        for path in sorted(Path(tmp).glob("*.jsonl")):
            for line in path.read_text().splitlines():
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "k" in record:
                    keys.append(record["k"])
        return {
            "gates": stats.gates,
            "levels": stats.levels,
            "area": stats.area,
            "margins": margins,
            "cache_keys": sorted(keys),
        }


@pytest.mark.parametrize("name", BENCH_SUBSET)
def test_default_model_matches_seed(name):
    assert capture(name) == GOLDEN[name]


def test_parallel_run_matches_seed_too():
    # Work distribution must not leak into results: two workers, same
    # networks, same cache keys.
    name = BENCH_SUBSET[0]
    assert capture(name, jobs=2) == GOLDEN[name]


@pytest.mark.parametrize("name", BENCH_SUBSET)
def test_golden_cache_keys_are_unsuffixed(name):
    # The ltg model keeps the historical 4-field entry keys; a fingerprint
    # suffix here would orphan every pre-refactor cache on disk.
    for key in GOLDEN[name]["cache_keys"]:
        assert key.count("|") == 3, key
