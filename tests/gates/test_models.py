"""Gate-model backends: registry, MT absorption, flash device rules.

The default (``ltg``) behavior is pinned separately by
``test_differential.py``; this module covers what the other backends add
on top — the registry plumbing, the multi-threshold parity absorption the
single-threshold flow cannot do, the flash grid/drift sign-off, and the
NP-transform algebra persistent entries round-trip through.
"""

from __future__ import annotations

import pytest

from repro.boolean.function import BooleanFunction
from repro.cache.canonical import NPTransform
from repro.core.identify import is_threshold_function
from repro.core.threshold import MultiThresholdVector, WeightThresholdVector
from repro.errors import ReproError
from repro.gates import (
    FlashModel,
    LtgModel,
    MultiThresholdModel,
    get_model,
    model_for_fingerprint,
    model_names,
    registered_models,
)

#: 3-input odd parity in SOP form — the smallest XOR cone worth absorbing.
XOR3 = "a b' c' + a' b c' + a' b' c + a b c"


class TestRegistry:
    def test_builtins_registered(self):
        assert set(model_names()) == {"ltg", "multi-threshold", "flash"}

    def test_get_model_returns_shared_instances(self):
        assert isinstance(get_model("ltg"), LtgModel)
        assert isinstance(get_model("multi-threshold"), MultiThresholdModel)
        assert isinstance(get_model("flash"), FlashModel)
        assert get_model("ltg") is get_model("ltg")

    def test_unknown_model_raises_with_known_names(self):
        with pytest.raises(ReproError, match="ltg"):
            get_model("cmos")

    def test_fingerprints_are_distinct(self):
        prints = [m.fingerprint for m in registered_models()]
        assert len(prints) == len(set(prints))

    def test_model_for_fingerprint_matches_family(self):
        # Exact fingerprints resolve, but so do re-parameterized ones from
        # the same family — the decode algebra is family-wide.
        assert model_for_fingerprint("ltg-v1").name == "ltg"
        assert model_for_fingerprint("mtg-v1:k6:w2").name == "multi-threshold"
        assert model_for_fingerprint("mtg-v1:k9:w3").name == "multi-threshold"
        assert model_for_fingerprint("flash-v1:L16:d0.1").name == "flash"
        assert model_for_fingerprint("quantum-v1") is None


class TestMultiThresholdAbsorption:
    def test_parity_is_not_a_single_threshold_function(self):
        assert is_threshold_function(BooleanFunction.parse(XOR3)) is None

    def test_parity_absorbs_into_one_k_threshold_gate(self):
        vector = is_threshold_function(
            BooleanFunction.parse(XOR3), gate_model="multi-threshold"
        )
        assert isinstance(vector, MultiThresholdVector)
        # <1,1,1; 1,2,3>: the weighted sum counts true inputs and the
        # output toggles at every threshold — exactly odd parity.
        assert vector.weights == (1, 1, 1)
        assert vector.thresholds == (1, 2, 3)
        for total, on in ((0, False), (1, True), (2, False), (3, True)):
            assert vector.fires(total) is on

    def test_threshold_functions_still_come_back_single(self):
        # Anything the LTG pipeline already handles must not grow extra
        # thresholds: the MT search only runs after the LTG path fails.
        vector = is_threshold_function(
            BooleanFunction.parse("a b + a c + b c"),
            gate_model="multi-threshold",
        )
        assert isinstance(vector, WeightThresholdVector)

    def test_mt_vector_verifies_against_its_cover(self):
        model = get_model("multi-threshold")
        xor2_key = (2, ((1, 2), (2, 1)))  # a b' + a' b
        good = MultiThresholdVector((1, 1), (1, 2))
        assert model.verify_vector(xor2_key, good, 0, 1)
        # An AND vector disagrees with XOR on (1, 1): rejected.
        bad = MultiThresholdVector((1, 1), (2,))
        assert not model.verify_vector(xor2_key, bad, 0, 1)

    def test_np_transform_roundtrip(self):
        model = get_model("multi-threshold")
        vector = MultiThresholdVector((1, 2, 1), (1, 3, 4))
        transform = NPTransform(perm=(2, 0, 1), flipped=(False, True, True))
        encoded = model.encode_canonical(vector, transform)
        assert encoded is not None and len(encoded) == 6
        decoded = model.decode_canonical(encoded, transform)
        assert decoded == vector

    def test_persistent_roundtrip(self, tmp_path):
        # An MT solve flushed to disk must come back verbatim on a warm
        # run — including its extra thresholds, which ride in the same
        # entry format as single-threshold weights.
        from repro.engine.store import ResultStore

        cold = is_threshold_function(
            BooleanFunction.parse(XOR3),
            cache_dir=str(tmp_path),
            gate_model="multi-threshold",
        )
        store = ResultStore.with_cache_dir(str(tmp_path))
        warm = is_threshold_function(
            BooleanFunction.parse(XOR3),
            store=store,
            gate_model="multi-threshold",
        )
        assert warm == cold
        assert store.stats.persistent_hits > 0


class TestFlashDeviceRules:
    def test_required_margin_scales_with_peak_weight(self):
        model = get_model("flash")
        assert model.required_margin(()) == 0
        assert model.required_margin((1, 1)) == 1
        assert model.required_margin((5, -3)) == 2  # ceil(0.25 * 5)
        assert model.required_margin((8,)) == 2

    def test_admits_vector_rejects_off_grid_weights(self):
        model = get_model("flash")
        assert not model.admits_vector(
            WeightThresholdVector((model.levels + 1,), 1)
        )
        assert not model.admits_vector(MultiThresholdVector((1, 1), (1, 2)))

    def test_admits_vector_enforces_the_drift_floor(self):
        model = get_model("flash")
        # <1, 1; 2> (AND): both margins are 0 < ceil(0.25 * 1) = 1.
        assert not model.admits_vector(WeightThresholdVector((1, 1), 2))
        # <2, 2; 3>: ON margin 1, OFF margin 1 — covers the drift of w=2.
        assert model.admits_vector(WeightThresholdVector((2, 2), 3))

    def test_or_vector_signs_off_its_own_drift(self):
        model = get_model("flash")
        vec = model.or_vector(3, 0, 1)
        on, off = vec.margins()
        req = model.required_margin(vec.weights)
        assert req > 0
        assert on >= req and off >= req

    def test_check_widens_margins_to_cover_drift(self):
        vector = is_threshold_function(
            BooleanFunction.parse("a b + a c + b c"), gate_model="flash"
        )
        assert isinstance(vector, WeightThresholdVector)
        model = get_model("flash")
        assert model.admits_vector(vector)


class TestEngineAbsorption:
    """End-to-end: the same parity cone, one gate model apart."""

    @staticmethod
    def _parity_network():
        from repro.benchgen.circuits import CircuitBuilder

        cb = CircuitBuilder("p6")
        cb.output(cb.parity_tree(cb.inputs("y", 6)), "even")
        return cb.done()

    def test_multi_threshold_beats_ltg_on_parity(self):
        from repro.core.area import network_stats
        from repro.core.synthesis import (
            SynthesisOptions,
            synthesize_with_report,
        )
        from repro.core.verify import verify_threshold_network
        from repro.network.scripts import prepare_tels

        results = {}
        for model in ("ltg", "multi-threshold"):
            source = self._parity_network()
            net, report = synthesize_with_report(
                prepare_tels(source),
                SynthesisOptions(
                    psi=9, gate_model=model, preserve_sharing=False
                ),
            )
            assert verify_threshold_network(source, net)
            results[model] = (
                network_stats(net).gates,
                report.checker.stats.multithreshold_hits,
            )
        ltg_gates, _ = results["ltg"]
        mt_gates, mt_hits = results["multi-threshold"]
        assert mt_hits >= 1
        assert mt_gates < ltg_gates
