"""Cooperative cancellation through the job layer and the HTTP API."""

from __future__ import annotations

import threading
import time

import pytest

from repro.benchgen.paper_examples import MOTIVATIONAL_BLIF
from repro.errors import SynthesisCancelled
from repro.serve.client import ServeClientError
from repro.serve.jobs import JobManager
from repro.serve.schemas import ApiError


@pytest.fixture
def blocking_manager(monkeypatch):
    """A one-worker manager whose synthesis blocks until cancelled."""
    import repro.core.synthesis as synthesis_module

    started = threading.Event()

    def blocking_synthesis(network, options=None, **kwargs):
        started.set()
        cancel = kwargs["cancel"]
        assert cancel.wait(timeout=30.0), "job was never cancelled"
        raise SynthesisCancelled("cancelled between cones")

    monkeypatch.setattr(
        synthesis_module, "synthesize_with_report", blocking_synthesis
    )
    manager = JobManager(max_workers=1)
    try:
        yield manager, started
    finally:
        manager.shutdown(timeout=5.0)


def _wait_terminal(manager: JobManager, job_id: str, timeout: float = 10.0):
    deadline = time.monotonic() + timeout
    while not manager.get(job_id).is_terminal:
        assert time.monotonic() < deadline, "job never became terminal"
        time.sleep(0.01)
    return manager.get(job_id)


class TestManagerCancellation:
    def _submit(self, manager: JobManager) -> str:
        return manager.submit(
            {"blif": MOTIVATIONAL_BLIF, "name": "motivational"}
        ).job_id

    def test_cancel_running_job_stops_the_worker(self, blocking_manager):
        manager, started = blocking_manager
        job_id = self._submit(manager)
        assert started.wait(timeout=10.0)
        manager.cancel(job_id)
        job = _wait_terminal(manager, job_id)
        assert job.state == "cancelled"
        assert [e["event"] for e in job.events][-1] == "job-cancelled"

    def test_cancel_queued_job_resolves_immediately(self, blocking_manager):
        manager, started = blocking_manager
        running = self._submit(manager)
        assert started.wait(timeout=10.0)
        queued = self._submit(manager)  # worker is busy: stays queued
        manager.cancel(queued)
        assert manager.get(queued).state == "cancelled"
        # The blocked job is still running; clean up.
        manager.cancel(running)
        _wait_terminal(manager, running)

    def test_worker_survives_to_run_the_next_job(self, blocking_manager):
        """Cancellation must not orphan the pool worker."""
        manager, started = blocking_manager
        first = self._submit(manager)
        assert started.wait(timeout=10.0)
        second = self._submit(manager)
        manager.cancel(first)
        _wait_terminal(manager, first)
        # The same (sole) worker picks up the next job.
        manager.cancel(second)
        assert _wait_terminal(manager, second).state == "cancelled"

    def test_cancel_terminal_job_conflicts(self, blocking_manager):
        manager, started = blocking_manager
        job_id = self._submit(manager)
        assert started.wait(timeout=10.0)
        manager.cancel(job_id)
        _wait_terminal(manager, job_id)
        with pytest.raises(ApiError) as err:
            manager.cancel(job_id)
        assert err.value.status == 409


class TestHttpCancellation:
    def test_delete_terminal_job_is_409(self, daemon, small_blif):
        _, client = daemon
        job_id = client.submit(small_blif)["id"]
        assert client.wait(job_id)["state"] == "done"
        with pytest.raises(ServeClientError) as err:
            client.cancel(job_id)
        assert err.value.status == 409
        assert err.value.code == "conflict"

    def test_delete_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as err:
            client.cancel("j424242")
        assert err.value.status == 404
