"""Event streaming: NDJSON/SSE encodings, ordering, and resumption."""

from __future__ import annotations

import json
import urllib.request

from repro.serve.sse import encode_ndjson, encode_sse, wants_sse


class TestEncodings:
    def test_wants_sse(self):
        assert wants_sse("text/event-stream")
        assert wants_sse("application/json, text/event-stream;q=0.9")
        assert not wants_sse("application/json")
        assert not wants_sse(None)
        assert not wants_sse("")

    def test_ndjson_is_one_line(self):
        raw = encode_ndjson({"event": "phase", "seq": 3})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert json.loads(raw) == {"event": "phase", "seq": 3}

    def test_sse_block_shape(self):
        raw = encode_sse({"event": "task-done", "seq": 7, "gates": 2})
        text = raw.decode()
        assert text.startswith("event: task-done\nid: 7\ndata: ")
        assert text.endswith("\n\n")
        payload = json.loads(text.split("data: ", 1)[1])
        assert payload["gates"] == 2


class TestStreaming:
    def _run_job(self, client, blif: str) -> str:
        job_id = client.submit(blif)["id"]
        assert client.wait(job_id)["state"] == "done"
        return job_id

    def test_ndjson_stream_is_ordered_and_terminates(
        self, daemon, small_blif
    ):
        _, client = daemon
        job_id = self._run_job(client, small_blif)
        events = list(client.events(job_id))
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0]["event"] == "job-queued"
        assert events[1]["event"] == "job-started"
        assert events[-1]["event"] == "job-done"
        names = [e["event"] for e in events]
        assert "phase" in names
        assert "task-done" in names
        # Engine events fall strictly between the lifecycle markers.
        assert names.index("job-started") < names.index("task-done")

    def test_live_stream_sees_job_finish(self, daemon, small_blif):
        """A stream opened before completion still drains to job-done."""
        _, client = daemon
        job_id = client.submit(small_blif)["id"]
        events = list(client.events(job_id))  # blocks until terminal
        assert events[-1]["event"].startswith("job-")
        assert events[-1]["event"] == "job-done"

    def test_since_resumes_mid_stream(self, daemon, small_blif):
        _, client = daemon
        job_id = self._run_job(client, small_blif)
        full = list(client.events(job_id))
        tail = list(client.events(job_id, since=len(full) - 2))
        assert tail == full[-2:]

    def test_sse_stream_via_accept_header(self, daemon, small_blif):
        app, client = daemon
        job_id = self._run_job(client, small_blif)
        request = urllib.request.Request(
            f"{app.url}/jobs/{job_id}/events",
            headers={"Accept": "text/event-stream"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            body = response.read().decode()
        blocks = [b for b in body.split("\n\n") if b.strip()]
        ndjson = list(client.events(job_id))
        assert len(blocks) == len(ndjson)
        first_data = json.loads(blocks[0].split("data: ", 1)[1])
        assert first_data["event"] == "job-queued"
        # ids carry the seq for Last-Event-ID resumption.
        assert "id: 0" in blocks[0]

    def test_bad_since_is_400(self, daemon, small_blif):
        app, client = daemon
        job_id = self._run_job(client, small_blif)
        import urllib.error

        try:
            urllib.request.urlopen(
                f"{app.url}/jobs/{job_id}/events?since=nope", timeout=10
            )
        except urllib.error.HTTPError as err:
            assert err.code == 400
        else:  # pragma: no cover - fail loudly
            raise AssertionError("expected a 400")
