"""HTTP job-API round trips: differential vs the direct engine, 4xx paths."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.verify import verify_threshold_network
from repro.io.blif import parse_blif
from repro.io.thblif import to_thblif
from repro.network.scripts import prepare_tels
from repro.serve.client import ServeClientError

from tests.serve.conftest import BAD_BLIF


class TestRoundTrip:
    def test_submit_result_matches_direct_synthesis(self, daemon, small_blif):
        """The service answer is byte-identical to calling the engine."""
        _, client = daemon
        job_id = client.submit(small_blif, name="motivational")["id"]
        final = client.wait(job_id)
        assert final["state"] == "done"
        result = client.result(job_id)

        source = parse_blif(small_blif, default_name="motivational")
        network, report = synthesize_with_report(
            prepare_tels(source), SynthesisOptions()
        )
        stats = network_stats(network)
        assert result["network"]["thblif"] == to_thblif(network)
        assert result["network"]["gates"] == stats.gates
        assert result["network"]["levels"] == stats.levels
        assert result["network"]["area"] == stats.area
        assert result["verified"] is True
        assert verify_threshold_network(source, network)
        assert result["lint"]["clean"] is report.lint.is_clean
        assert client.result(job_id, fmt="thblif") == to_thblif(network)

    def test_options_travel_through(self, daemon, small_blif):
        _, client = daemon
        job_id = client.submit(
            small_blif, options={"psi": 4, "delta_off": 2, "seed": 7}
        )["id"]
        assert client.wait(job_id)["state"] == "done"
        direct, _ = synthesize_with_report(
            prepare_tels(parse_blif(small_blif, default_name="network")),
            SynthesisOptions(psi=4, delta_off=2, seed=7),
        )
        result = client.result(job_id)
        assert result["network"]["thblif"] == to_thblif(direct)

    def test_sarif_result_is_valid(self, daemon, small_blif):
        _, client = daemon
        job_id = client.submit(small_blif)["id"]
        client.wait(job_id)
        sarif = client.result(job_id, fmt="sarif")
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"] == []  # lint-clean

    def test_healthz_and_stats(self, daemon, small_blif):
        _, client = daemon
        assert client.healthz()["status"] == "ok"
        job_id = client.submit(small_blif)["id"]
        client.wait(job_id)
        stats = client.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["max_workers"] == 2
        assert stats["models_done"] == {"ltg": 1}
        assert stats["cache"]["entries"] > 0
        assert "journal" in stats

    def test_job_listing(self, daemon, small_blif):
        _, client = daemon
        first = client.submit(small_blif)["id"]
        second = client.submit(small_blif)["id"]
        client.wait(first)
        client.wait(second)
        assert [job["id"] for job in client.jobs()] == [first, second]


class TestErrorPaths:
    def test_malformed_blif_is_structured_400(self, client):
        with pytest.raises(ServeClientError) as err:
            client.submit(BAD_BLIF)
        assert err.value.status == 400
        assert err.value.code == "blif-error"
        detail = err.value.payload["error"]["detail"]
        assert isinstance(detail["line"], int)

    def test_unknown_option_is_400(self, client, small_blif):
        with pytest.raises(ServeClientError) as err:
            client.submit(small_blif, options={"warp_factor": 9})
        assert err.value.status == 400
        assert "warp_factor" in str(err.value)

    def test_bad_option_value_is_400(self, client, small_blif):
        with pytest.raises(ServeClientError) as err:
            client.submit(small_blif, options={"psi": "three"})
        assert err.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as err:
            client.status("j999999")
        assert err.value.status == 404
        assert err.value.code == "not-found"

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeClientError) as err:
            client._json("GET", "/frobnicate")
        assert err.value.status == 404

    def test_failed_job_reports_error_not_result(self, daemon, small_blif):
        _, client = daemon
        # A strict run with an already-expired total deadline is accepted
        # (the options are well-formed) but fails during execution.
        job_id = client.submit(
            small_blif,
            options={"deadline_total_s": 1e-9, "strict_synthesis": True},
        )["id"]
        final = client.wait(job_id)
        assert final["state"] == "failed"
        assert final["error"]["code"] == "synthesis-error"
        with pytest.raises(ServeClientError) as err:
            client.result(job_id)
        assert err.value.status == 404
        assert err.value.code == "no-result"

    def test_unknown_result_format_is_400(self, daemon, small_blif):
        _, client = daemon
        job_id = client.submit(small_blif)["id"]
        client.wait(job_id)
        with pytest.raises(ServeClientError) as err:
            client.result(job_id, fmt="xml")
        assert err.value.status == 400

    def test_empty_body_is_400(self, daemon):
        app, _ = daemon
        request = urllib.request.Request(app.url + "/jobs", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_non_json_body_is_400(self, daemon):
        app, client = daemon
        request = urllib.request.Request(
            app.url + "/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400
        payload = json.loads(err.value.read())
        assert "error" in payload

    def test_missing_blif_field_is_400(self, client):
        with pytest.raises(ServeClientError) as err:
            client._json("POST", "/jobs", {"name": "nothing"})
        assert err.value.status == 400
