"""Work-broker semantics: leases, expiry, idempotency, withdrawal."""

from __future__ import annotations

import base64

import pytest

from repro.serve.broker import (
    MAX_CLAIM_TASKS,
    WorkBroker,
    payload_etag,
)
from repro.serve.schemas import ApiError


class FakeClock:
    """A hand-advanced monotonic clock for deterministic lease tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_broker(lease_s: float = 10.0) -> tuple[WorkBroker, FakeClock]:
    clock = FakeClock()
    return WorkBroker(lease_s=lease_s, clock=clock), clock


def open_session(broker: WorkBroker, payload: bytes = b"pickle-bytes") -> str:
    created = broker.create_session(
        base64.b64encode(payload).decode("ascii"), meta={"kind": "test"}
    )
    return created["session"]


def enqueue(broker: WorkBroker, sid: str, *task_ids: str) -> None:
    broker.enqueue(
        sid,
        [{"task_id": t, "root": t, "attempt": 1} for t in task_ids],
    )


class TestSessions:
    def test_payload_round_trip_with_etag(self):
        broker, _clock = make_broker()
        raw = b"\x00\x01network-options-store"
        created = broker.create_session(
            base64.b64encode(raw).decode("ascii")
        )
        assert created["etag"] == payload_etag(raw)
        payload, etag = broker.payload(created["session"])
        assert payload == raw
        assert etag == created["etag"]

    def test_bad_base64_is_rejected(self):
        broker, _clock = make_broker()
        with pytest.raises(ApiError) as err:
            broker.create_session("not base64 at all!!!")
        assert err.value.status == 400

    def test_closed_session_rejects_access_and_frees_payload(self):
        broker, _clock = make_broker()
        sid = open_session(broker)
        enqueue(broker, sid, "t1")
        broker.close(sid)
        with pytest.raises(ApiError) as err:
            broker.collect(sid)
        assert err.value.status == 404
        # Closed sessions never hand out work.
        assert broker.claim("w1", 4)["tasks"] == []


class TestLeases:
    def test_claim_then_post_round_trip(self):
        broker, _clock = make_broker()
        sid = open_session(broker)
        enqueue(broker, sid, "t1", "t2")
        claim = broker.claim("w1", 1)
        assert claim["session"] == sid
        assert [t["task_id"] for t in claim["tasks"]] == ["t1"]
        broker.post_results(
            sid, "w1", [{"task_id": "t1", "blob": "QQ=="}], []
        )
        out = broker.collect(sid)
        assert [r["task_id"] for r in out["results"]] == ["t1"]
        assert out["queued"] == 1  # t2 still waiting
        assert out["leased"] == 0

    def test_claim_caps_batch_size(self):
        broker, _clock = make_broker()
        sid = open_session(broker)
        enqueue(broker, sid, *[f"t{i}" for i in range(MAX_CLAIM_TASKS + 5)])
        claim = broker.claim("w1", 999)
        assert len(claim["tasks"]) == MAX_CLAIM_TASKS

    def test_expired_lease_becomes_crash_failure(self):
        broker, clock = make_broker(lease_s=10.0)
        sid = open_session(broker)
        enqueue(broker, sid, "t1")
        broker.claim("w1", 4)
        clock.advance(10.5)
        out = broker.collect(sid)
        (failure,) = out["failures"]
        assert failure["task_id"] == "t1"
        assert failure["kind"] == "crash"
        assert failure["expired"] is True
        assert "w1" in failure["message"]
        assert broker.lease_expirations == 1

    def test_heartbeat_renews_every_held_lease(self):
        broker, clock = make_broker(lease_s=10.0)
        sid = open_session(broker)
        enqueue(broker, sid, "t1", "t2")
        broker.claim("w1", 4)
        clock.advance(8.0)
        broker.heartbeat("w1")  # deadline moves to t=18
        clock.advance(9.0)  # t=17: still inside the renewed lease
        assert broker.collect(sid)["failures"] == []
        clock.advance(2.0)  # t=19: expired
        out = broker.collect(sid)
        assert {f["task_id"] for f in out["failures"]} == {"t1", "t2"}

    def test_result_landing_before_sweep_wins_over_expiry(self):
        broker, clock = make_broker(lease_s=10.0)
        sid = open_session(broker)
        enqueue(broker, sid, "t1")
        broker.claim("w1", 4)
        broker.post_results(
            sid, "w1", [{"task_id": "t1", "blob": "QQ=="}], []
        )
        clock.advance(60.0)
        out = broker.collect(sid)
        assert [r["task_id"] for r in out["results"]] == ["t1"]
        assert out["failures"] == []  # no phantom crash for a solved cone


class TestIdempotency:
    def test_duplicate_result_is_counted_and_dropped(self):
        broker, _clock = make_broker()
        sid = open_session(broker)
        enqueue(broker, sid, "t1")
        broker.claim("w1", 4)
        row = {"task_id": "t1", "blob": "QQ=="}
        first = broker.post_results(sid, "w1", [row], [])
        second = broker.post_results(sid, "w2", [row], [])
        assert first == {"accepted": 1, "duplicates": 0}
        assert second == {"accepted": 0, "duplicates": 1}
        assert len(broker.collect(sid)["results"]) == 1
        assert broker.duplicate_results == 1

    def test_duplicate_failure_report_is_deduped(self):
        broker, _clock = make_broker()
        sid = open_session(broker)
        enqueue(broker, sid, "t1")
        broker.claim("w1", 4)
        row = {
            "task_id": "t1",
            "kind": "error",
            "message": "flaky",
            "attempt": 1,
        }
        broker.post_results(sid, "w1", [], [row])
        broker.post_results(sid, "w1", [], [row])
        assert len(broker.collect(sid)["failures"]) == 1
        # A different attempt of the same cone is a fresh failure.
        broker.post_results(sid, "w1", [], [dict(row, attempt=2)])
        assert len(broker.collect(sid)["failures"]) == 1


class TestWithdrawAndStats:
    def test_withdraw_drains_only_unclaimed_tasks(self):
        broker, _clock = make_broker()
        sid = open_session(broker)
        enqueue(broker, sid, "t1", "t2", "t3")
        broker.claim("w1", 1)  # t1 leased
        withdrawn = broker.withdraw(sid)["tasks"]
        assert [t["task_id"] for t in withdrawn] == ["t2", "t3"]
        assert broker.collect(sid)["queued"] == 0
        assert broker.collect(sid)["leased"] == 1

    def test_stats_report_live_and_silent_workers(self):
        broker, clock = make_broker(lease_s=10.0)
        sid = open_session(broker)
        enqueue(broker, sid, "t1")
        broker.claim("w1", 4)
        stats = broker.stats()
        assert stats["workers"]["w1"]["live"] is True
        assert stats["workers"]["w1"]["leases"] == 1
        clock.advance(25.0)  # past worker_timeout_s = 2 * lease_s
        stats = broker.stats()
        assert stats["workers"]["w1"]["live"] is False
        assert stats["live_workers"] == 0
        assert stats["lease_expirations"] == 1
