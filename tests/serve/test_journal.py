"""Jobs-journal persistence: folding, torn lines, and daemon restarts."""

from __future__ import annotations

import json

from repro.benchgen.paper_examples import MOTIVATIONAL_BLIF
from repro.serve.journal import FORMAT_NAME, JobJournal, journal_file
from repro.serve.jobs import JobManager


class TestJournalFile:
    def test_append_then_load_folds_per_job(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"id": "j1", "state": "queued", "submitted_at": 1.0})
        journal.append({"id": "j1", "state": "running"})
        journal.append({"id": "j2", "state": "queued"})
        journal.append({"id": "j1", "state": "done", "result": {"x": 1}})
        folded = JobJournal(tmp_path).load()
        assert folded["j1"]["state"] == "done"
        assert folded["j1"]["submitted_at"] == 1.0  # earlier fields survive
        assert folded["j1"]["result"] == {"x": 1}
        assert folded["j2"]["state"] == "queued"

    def test_torn_trailing_line_costs_only_that_record(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"id": "j1", "state": "queued"})
        journal.append({"id": "j1", "state": "running"})
        with open(journal.path, "a") as handle:
            handle.write('{"id": "j1", "state": "done", "resu')  # crash
        fresh = JobJournal(tmp_path)
        folded = fresh.load()
        assert folded["j1"]["state"] == "running"
        assert fresh.corrupt_lines == 1

    def test_mismatched_header_loads_empty(self, tmp_path):
        path = journal_file(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"format": FORMAT_NAME, "version": 999}) + "\n"
            + '{"id": "j1", "state": "done"}\n'
        )
        fresh = JobJournal(tmp_path)
        assert fresh.load() == {}
        assert fresh.rejected_header

    def test_compact_rewrites_one_line_per_job(self, tmp_path):
        journal = JobJournal(tmp_path)
        for state in ("queued", "running", "done"):
            journal.append({"id": "j1", "state": state})
        assert journal.compact([{"id": "j1", "state": "done"}])
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2  # header + one snapshot
        assert JobJournal(tmp_path).load()["j1"]["state"] == "done"


class TestRecovery:
    def _submit(self, manager: JobManager, **kwargs) -> str:
        payload = {"blif": MOTIVATIONAL_BLIF, "name": "motivational"}
        payload.update(kwargs)
        return manager.submit(payload).job_id

    def _wait(self, manager: JobManager, job_id: str) -> None:
        import time

        deadline = time.monotonic() + 30
        while not manager.get(job_id).is_terminal:
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.01)

    def test_finished_jobs_survive_restart(self, tmp_path):
        manager = JobManager(journal_dir=str(tmp_path))
        job_id = self._submit(manager)
        self._wait(manager, job_id)
        result = manager.get(job_id).result
        manager.shutdown()

        reborn = JobManager(journal_dir=str(tmp_path))
        try:
            job = reborn.get(job_id)
            assert job.state == "done"
            assert job.result == result  # byte-identical history
            # Restored terminal jobs still serve a closing event stream.
            events = list(reborn.iter_events(job))
            assert events[-1]["event"] == "job-done"
        finally:
            reborn.shutdown()

    def test_interrupted_job_is_reenqueued_and_completes(self, tmp_path):
        """A journal whose job never finished (daemon crash) re-runs it."""
        journal = JobJournal(tmp_path)
        journal.append(
            {
                "id": "j000005",
                "state": "running",
                "submitted_at": 123.0,
                "started_at": 124.0,
                "request": {"blif": MOTIVATIONAL_BLIF, "name": "crashed"},
            }
        )
        manager = JobManager(journal_dir=str(tmp_path))
        try:
            self._wait(manager, "j000005")
            job = manager.get("j000005")
            assert job.state == "done"
            assert job.result["verified"] is True
            # Recovery preserved the original id sequence position.
            new_id = self._submit(manager)
            assert new_id == "j000006"
        finally:
            manager.shutdown()

    def test_torn_write_plus_reenqueue_recovers_under_chaos(
        self, tmp_path, monkeypatch
    ):
        """A daemon SIGKILLed mid-journal-write restarts into chaos and wins.

        The journal holds a running job whose terminal record was torn mid
        write (the process died inside ``append``).  Recovery must drop
        only the torn line, re-enqueue the in-flight job, and complete it
        — here with ``TELS_CHAOS`` active on the solver and cache sites,
        so the re-run also rides the retry/degradation ladder.
        """
        journal = JobJournal(tmp_path)
        journal.append(
            {
                "id": "j000004",
                "state": "running",
                "submitted_at": 10.0,
                "request": {"blif": MOTIVATIONAL_BLIF, "name": "torn"},
            }
        )
        with open(journal.path, "a") as handle:
            handle.write('{"id": "j000004", "state": "done", "resu')
        monkeypatch.setenv("TELS_CHAOS", "solver=0.25,cache=0.5:11")
        manager = JobManager(
            journal_dir=str(tmp_path), cache_dir=str(tmp_path / "cache")
        )
        try:
            assert manager.journal.corrupt_lines == 1
            self._wait(manager, "j000004")
            job = manager.get("j000004")
            assert job.state == "done"
            assert job.result["verified"] is True
        finally:
            manager.shutdown()

    def test_unparseable_journaled_request_fails_cleanly(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(
            {
                "id": "j000001",
                "state": "queued",
                "request": {"blif": MOTIVATIONAL_BLIF, "warp_factor": 9},
            }
        )
        manager = JobManager(journal_dir=str(tmp_path))
        try:
            job = manager.get("j000001")
            assert job.state == "failed"
            assert job.error["code"] == "unrecoverable"
        finally:
            manager.shutdown()

    def test_shutdown_compacts_journal(self, tmp_path):
        manager = JobManager(journal_dir=str(tmp_path))
        job_id = self._submit(manager)
        self._wait(manager, job_id)
        manager.shutdown()
        lines = journal_file(tmp_path).read_text().splitlines()
        assert len(lines) == 2  # header + one folded snapshot
        snapshot = json.loads(lines[1])
        assert snapshot["state"] == "done"
        assert snapshot["request"]["name"] == "motivational"
