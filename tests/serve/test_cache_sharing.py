"""Multi-tenant cache semantics: sharing, isolation, and opt-out."""

from __future__ import annotations


class TestSharedWarming:
    def test_second_tenant_is_served_from_cache(self, daemon, small_blif):
        """A resubmission (different tenant, same cones) hits, not solves."""
        _, client = daemon
        first = client.submit(small_blif, name="tenant-a")["id"]
        assert client.wait(first)["state"] == "done"
        second = client.submit(small_blif, name="tenant-b")["id"]
        assert client.wait(second)["state"] == "done"

        cold = client.result(first)["cache"]
        warm = client.result(second)["cache"]
        assert cold["ilp_solved"] + cold["fastpath_hits"] > 0
        # Every check the second job made was answered by a cache tier.
        assert warm["store_hits"] + warm["persistent_hits"] > 0
        assert warm["ilp_solved"] == 0
        # And both produced the identical network.
        assert (
            client.result(first)["network"]["thblif"]
            == client.result(second)["network"]["thblif"]
        )

    def test_daemon_stats_aggregate_across_tenants(self, daemon, small_blif):
        _, client = daemon
        for tenant in ("a", "b"):
            job_id = client.submit(small_blif, name=tenant)["id"]
            client.wait(job_id)
        stats = client.stats()["store"]
        assert stats["vector_hits"] > 0
        assert stats["persistent_misses"] > 0  # the cold first pass


class TestCrossModelIsolation:
    def test_no_cross_fingerprint_hits(self, daemon, small_blif):
        """An ltg-warmed cache must not answer flash-model lookups."""
        _, client = daemon
        warm = client.submit(small_blif, options={"gate_model": "ltg"})["id"]
        assert client.wait(warm)["state"] == "done"
        flash = client.submit(small_blif, options={"gate_model": "flash"})[
            "id"
        ]
        assert client.wait(flash)["state"] == "done"
        cache = client.result(flash)["cache"]
        # The flash run's own fresh entries may produce legitimate
        # self-hits, but the ltg warming must be invisible: the flash job
        # starts cold (misses) and does its own solving work — unlike a
        # same-model resubmission, which is answered entirely from cache.
        assert cache["persistent_misses"] > 0
        assert cache["ilp_solved"] + cache["fastpath_hits"] > 0
        stats = client.stats()
        assert stats["models_done"] == {"ltg": 1, "flash": 1}


class TestOptOut:
    def test_no_cache_jobs_run_cold_and_do_not_warm(self, daemon, small_blif):
        _, client = daemon
        first = client.submit(small_blif, use_cache=False)["id"]
        assert client.wait(first)["state"] == "done"
        second = client.submit(small_blif, use_cache=False)["id"]
        assert client.wait(second)["state"] == "done"
        a = client.result(first)["cache"]
        b = client.result(second)["cache"]
        # No persistent tier at all for opted-out jobs, and no warming
        # between them: the second run repeats the first's work exactly.
        assert a["persistent_hits"] == b["persistent_hits"] == 0
        assert a["ilp_solved"] == b["ilp_solved"]
        assert a["fastpath_hits"] == b["fastpath_hits"]
        # The shared store saw none of it.
        assert client.stats()["store"]["persistent_misses"] == 0
