"""Fixtures for the ``tels serve`` daemon tests.

One ephemeral-port daemon per test (port 0, background accept thread),
with its own temporary persistent cache and jobs journal, torn down
through the same shutdown path the CLI uses.
"""

from __future__ import annotations

import pytest

from repro.benchgen.paper_examples import MOTIVATIONAL_BLIF
from repro.serve.app import ServeApp
from repro.serve.client import TelsClient

#: A second small circuit sharing cones with the motivational network
#: (same AND/OR structure over renamed inputs exercises the NP-canonical
#: persistent tier, not the per-network vector tier).
SHARED_CONE_BLIF = """\
.model twin
.inputs p q r s
.outputs y
.names p q a
11 1
.names r s b
11 1
.names a b y
1- 1
-1 1
.end
"""

BAD_BLIF = """\
.model broken
.inputs a b
.outputs y
.names a b y
11 oops
.end
"""


@pytest.fixture
def small_blif() -> str:
    return MOTIVATIONAL_BLIF


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on an ephemeral port; yields ``(app, client)``."""
    app = ServeApp(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        journal_dir=str(tmp_path / "journal"),
        max_workers=2,
    )
    app.start_background()
    try:
        yield app, TelsClient(app.url, timeout=30.0)
    finally:
        app.shutdown()


@pytest.fixture
def client(daemon) -> TelsClient:
    return daemon[1]
