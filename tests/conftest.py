"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.network.network import BooleanNetwork


from repro.benchgen.paper_examples import MOTIVATIONAL_BLIF  # noqa: F401 (re-export)


@pytest.fixture
def motivational_network() -> BooleanNetwork:
    """The paper's Fig. 2(a) network: 7 gates, 5 levels."""
    from repro.io.blif import parse_blif

    return parse_blif(MOTIVATIONAL_BLIF)


def random_cover(rng: random.Random, nvars: int, max_cubes: int = 6) -> Cover:
    """A random SOP cover for fuzz-style tests."""
    rows = [
        "".join(rng.choice("01-") for _ in range(nvars))
        for _ in range(rng.randint(0, max_cubes))
    ]
    return Cover.from_strings(rows) if rows else Cover.zero(nvars)


def random_network(
    seed: int, npi: int = 7, nnodes: int = 12, max_fanin: int = 4
) -> BooleanNetwork:
    """A random acyclic multi-level network with 3 primary outputs."""
    rng = random.Random(seed)
    net = BooleanNetwork(f"rand{seed}")
    signals = [net.add_input(f"x{i}") for i in range(npi)]
    for j in range(nnodes):
        k = rng.randint(1, min(max_fanin, len(signals)))
        fanins = rng.sample(signals, k)
        rows = [
            "".join(rng.choice("01-") for _ in range(k))
            for _ in range(rng.randint(1, 4))
        ]
        func = BooleanFunction.from_sop(rows, fanins)
        signals.append(net.add_node(f"n{j}", func))
    nodes = [s for s in signals if s.startswith("n")]
    for out in rng.sample(nodes, min(3, len(nodes))):
        net.add_output(out)
    net.check()
    return net
