"""Unit tests for the parametric circuit builders."""

from repro.benchgen.circuits import CircuitBuilder


class TestPrimitives:
    def test_logic_gates(self):
        cb = CircuitBuilder("t")
        a, b = cb.input("a"), cb.input("b")
        gates = {
            "and": cb.and_([a, b]),
            "or": cb.or_([a, b]),
            "nand": cb.nand_([a, b]),
            "nor": cb.nor_([a, b]),
            "xor": cb.xor2(a, b),
            "xnor": cb.xnor2(a, b),
            "not": cb.not_(a),
            "buf": cb.buf(a),
        }
        for g in gates.values():
            cb.network.add_output(g)
        net = cb.done()
        truth = {
            (0, 0): dict(and_=0, or_=0, nand=1, nor=1, xor=0, xnor=1, not_=1, buf=0),
            (1, 0): dict(and_=0, or_=1, nand=1, nor=0, xor=1, xnor=0, not_=0, buf=1),
            (0, 1): dict(and_=0, or_=1, nand=1, nor=0, xor=1, xnor=0, not_=1, buf=0),
            (1, 1): dict(and_=1, or_=1, nand=0, nor=0, xor=0, xnor=1, not_=0, buf=1),
        }
        for (av, bv), want in truth.items():
            values = net.evaluate({"a": av, "b": bv})
            assert values[gates["and"]] == bool(want["and_"])
            assert values[gates["or"]] == bool(want["or_"])
            assert values[gates["nand"]] == bool(want["nand"])
            assert values[gates["nor"]] == bool(want["nor"])
            assert values[gates["xor"]] == bool(want["xor"])
            assert values[gates["xnor"]] == bool(want["xnor"])
            assert values[gates["not"]] == bool(want["not_"])
            assert values[gates["buf"]] == bool(want["buf"])

    def test_mux2(self):
        cb = CircuitBuilder("t")
        s, a, b = cb.input("s"), cb.input("a"), cb.input("b")
        m = cb.mux2(s, a, b)
        cb.network.add_output(m)
        net = cb.done()
        assert net.evaluate({"s": 0, "a": 1, "b": 0})[m]
        assert not net.evaluate({"s": 1, "a": 1, "b": 0})[m]
        assert net.evaluate({"s": 1, "a": 0, "b": 1})[m]

    def test_maj3(self):
        cb = CircuitBuilder("t")
        a, b, c = (cb.input(x) for x in "abc")
        m = cb.maj3(a, b, c)
        cb.network.add_output(m)
        net = cb.done()
        for p in range(8):
            bits = [(p >> i) & 1 for i in range(3)]
            want = sum(bits) >= 2
            assert net.evaluate({"a": bits[0], "b": bits[1], "c": bits[2]})[m] == want


class TestComparator:
    def test_exhaustive_3bit(self):
        cb = CircuitBuilder("cmp")
        a = cb.inputs("a", 3)
        b = cb.inputs("b", 3)
        gt, lt, eq = cb.ripple_comparator(a, b)
        for s in (gt, lt, eq):
            cb.network.add_output(s)
        net = cb.done()
        for av in range(8):
            for bv in range(8):
                assignment = {}
                for i in range(3):
                    assignment[f"a{i}"] = (av >> i) & 1
                    assignment[f"b{i}"] = (bv >> i) & 1
                values = net.evaluate(assignment)
                assert values[gt] == (av > bv)
                assert values[lt] == (av < bv)
                assert values[eq] == (av == bv)


class TestCarryChain:
    def test_exhaustive_3bit_adder(self):
        cb = CircuitBuilder("add")
        a = cb.inputs("a", 3)
        b = cb.inputs("b", 3)
        sums, carry = cb.carry_chain(a, b)
        for s in sums:
            cb.network.add_output(s)
        cb.network.add_output(carry)
        net = cb.done()
        for av in range(8):
            for bv in range(8):
                assignment = {}
                for i in range(3):
                    assignment[f"a{i}"] = (av >> i) & 1
                    assignment[f"b{i}"] = (bv >> i) & 1
                values = net.evaluate(assignment)
                total = av + bv
                got = sum(
                    (1 << i) * values[sums[i]] for i in range(3)
                ) + 8 * values[carry]
                assert got == total


class TestDecoderMux:
    def test_decoder_one_hot(self):
        cb = CircuitBuilder("dec")
        sel = cb.inputs("s", 2)
        outs = cb.decoder(sel)
        for o in outs:
            cb.network.add_output(o)
        net = cb.done()
        for v in range(4):
            values = net.evaluate({"s0": v & 1, "s1": (v >> 1) & 1})
            hot = [i for i, o in enumerate(outs) if values[o]]
            assert hot == [v]

    def test_mux_tree_exhaustive(self):
        cb = CircuitBuilder("mux")
        data = cb.inputs("d", 4)
        sel = cb.inputs("s", 2)
        out = cb.mux_tree(data, sel)
        cb.network.add_output(out)
        net = cb.done()
        for v in range(4):
            for pattern in range(16):
                assignment = {"s0": v & 1, "s1": (v >> 1) & 1}
                for i in range(4):
                    assignment[f"d{i}"] = (pattern >> i) & 1
                assert net.evaluate(assignment)[out] == bool(
                    (pattern >> v) & 1
                )


class TestTrees:
    def test_parity_tree(self):
        cb = CircuitBuilder("par")
        xs = cb.inputs("x", 5)
        p = cb.parity_tree(xs)
        cb.network.add_output(p)
        net = cb.done()
        for v in range(32):
            assignment = {f"x{i}": (v >> i) & 1 for i in range(5)}
            assert net.evaluate(assignment)[p] == bool(bin(v).count("1") % 2)

    def test_and_or_tree(self):
        cb = CircuitBuilder("tree")
        xs = cb.inputs("x", 9)
        t = cb.and_or_tree(xs, group=3, conjunctive=True)
        cb.network.add_output(t)
        net = cb.done()
        all_ones = {f"x{i}": 1 for i in range(9)}
        assert net.evaluate(all_ones)[t]

    def test_output_aliasing(self):
        cb = CircuitBuilder("alias")
        a = cb.input("a")
        name = cb.output(a, "z")
        net = cb.done()
        assert name == "z"
        assert net.evaluate({"a": 1})["z"]
