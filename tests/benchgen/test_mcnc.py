"""Tests for the MCNC benchmark stand-ins."""

import pytest

from repro.benchgen.mcnc import BENCHMARKS, benchmark_names, build_benchmark
from repro.io.blif import parse_blif, to_blif
from repro.network.simulate import equivalent_networks, output_signatures

#: Paper Table I benchmark I/O profile (inputs, outputs).
EXPECTED_IO = {
    "cm152a": (11, 1),
    "cordic": (23, 2),
    "cm85a": (11, 3),
    "comp": (32, 3),
    "cmb": (16, 4),
    "term1": (34, 10),
    "pm1": (16, 13),
    "x1": (51, 35),
    "i10": (257, 224),
    "tcon": (17, 16),
}


class TestSuite:
    def test_names_match_table1(self):
        assert benchmark_names() == list(EXPECTED_IO)

    def test_small_set_drops_i10(self):
        assert "i10" not in benchmark_names(include_large=False)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_benchmark("s38417")

    @pytest.mark.parametrize(
        "name", [n for n in benchmark_names() if n != "i10"]
    )
    def test_io_counts(self, name):
        net = build_benchmark(name)
        assert (len(net.inputs), len(net.outputs)) == EXPECTED_IO[name]
        net.check()

    @pytest.mark.slow
    def test_i10_io_counts(self):
        net = build_benchmark("i10")
        assert (len(net.inputs), len(net.outputs)) == EXPECTED_IO["i10"]

    @pytest.mark.parametrize(
        "name", [n for n in benchmark_names() if n != "i10"]
    )
    def test_deterministic(self, name):
        a = build_benchmark(name)
        b = build_benchmark(name)
        assert output_signatures(a) == output_signatures(b)

    @pytest.mark.parametrize(
        "name", [n for n in benchmark_names() if n != "i10"]
    )
    def test_blif_roundtrip(self, name):
        net = build_benchmark(name)
        again = parse_blif(to_blif(net))
        assert equivalent_networks(net, again, vectors=256)

    def test_specs_have_descriptions(self):
        for spec in BENCHMARKS.values():
            assert spec.character


class TestFunctionalCharacter:
    def test_comp_is_a_comparator(self):
        net = build_benchmark("comp")
        def assign(a, b):
            out = {}
            for i in range(16):
                out[f"a{i}"] = (a >> i) & 1
                out[f"b{i}"] = (b >> i) & 1
            return out

        values = net.evaluate(assign(1000, 999))
        assert values["a_gt_b"] and not values["a_lt_b"] and not values["a_eq_b"]
        values = net.evaluate(assign(5, 5))
        assert values["a_eq_b"] and not values["a_gt_b"]

    def test_cm152a_is_a_mux(self):
        net = build_benchmark("cm152a")
        for sel in range(8):
            assignment = {f"a{i}": int(i == sel) for i in range(8)}
            assignment.update(
                {f"s{i}": (sel >> i) & 1 for i in range(3)}
            )
            assert net.evaluate(assignment)["z0"] is True

    def test_tcon_half_inverters(self):
        net = build_benchmark("tcon")
        assignment = {f"d{i}": 0 for i in range(16)}
        assignment["en"] = 1
        values = net.evaluate(assignment)
        for i in range(8):
            assert values[f"q{i}"] is True  # inverted zeros
        for i in range(8, 16):
            assert values[f"q{i}"] is False
