"""Tests for the extended benchmark tier."""

import pytest

from repro.benchgen.extended import (
    EXTENDED_BENCHMARKS,
    all_benchmark_names,
    build_extended_benchmark,
    extended_benchmark_names,
)
from repro.network.simulate import output_signatures


class TestTier:
    def test_no_overlap_with_table1(self):
        from repro.benchgen.mcnc import BENCHMARKS

        assert not set(EXTENDED_BENCHMARKS) & set(BENCHMARKS)

    def test_all_names_combined(self):
        names = all_benchmark_names()
        assert "comp" in names and "parity" in names
        assert len(names) == len(set(names))
        assert len(names) >= 30

    @pytest.mark.parametrize("name", extended_benchmark_names())
    def test_io_profile_and_consistency(self, name):
        net = build_extended_benchmark(name)
        spec = EXTENDED_BENCHMARKS[name]
        assert len(net.inputs) == spec.num_inputs
        assert len(net.outputs) == spec.num_outputs
        net.check()

    @pytest.mark.parametrize("name", ["alu2", "majority", "z4ml", "count"])
    def test_deterministic(self, name):
        a = build_extended_benchmark(name)
        b = build_extended_benchmark(name)
        assert output_signatures(a) == output_signatures(b)

    def test_table1_names_resolvable(self):
        net = build_extended_benchmark("cmb")
        assert len(net.inputs) == 16

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_extended_benchmark("nonexistent")


class TestFunctionalSpotChecks:
    def test_majority_function(self):
        net = build_extended_benchmark("majority")
        for v in range(32):
            bits = [(v >> i) & 1 for i in range(5)]
            want = sum(bits) >= 3
            assignment = {f"x{i}": bits[i] for i in range(5)}
            assert net.evaluate(assignment)["maj"] == want

    def test_parity_function(self):
        net = build_extended_benchmark("parity")
        for v in (0, 1, 0xFFFF, 0x1234):
            assignment = {f"x{i}": (v >> i) & 1 for i in range(16)}
            want = bin(v).count("1") % 2 == 1
            assert net.evaluate(assignment)["even"] == want

    def test_z4ml_adds(self):
        net = build_extended_benchmark("z4ml")
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    assignment = {"cin": cin}
                    for i in range(3):
                        assignment[f"a{i}"] = (a >> i) & 1
                        assignment[f"b{i}"] = (b >> i) & 1
                    out = net.evaluate(assignment)
                    got = sum(
                        (1 << i) * out[f"s{i}"] for i in range(3)
                    ) + 8 * out["cout"]
                    assert got == a + b + cin

    def test_decod_one_hot(self):
        net = build_extended_benchmark("decod")
        assignment = {f"s{i}": 0 for i in range(4)}
        assignment["en"] = 1
        values = net.evaluate(assignment)
        hot = [k for k, v in values.items() if v]
        assert hot == ["d0"]
