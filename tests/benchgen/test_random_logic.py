"""Tests for the seeded random-logic generator."""

from repro.benchgen.random_logic import random_logic_network
from repro.network.simulate import output_signatures


class TestGenerator:
    def test_dimensions(self):
        net = random_logic_network("r", 12, 5, 30, seed=3)
        assert len(net.inputs) == 12
        assert len(net.outputs) == 5
        net.check()

    def test_determinism(self):
        a = random_logic_network("r", 10, 4, 25, seed=9)
        b = random_logic_network("r", 10, 4, 25, seed=9)
        assert a.node_names == b.node_names
        assert output_signatures(a) == output_signatures(b)

    def test_different_seeds_differ(self):
        a = random_logic_network("r", 10, 4, 25, seed=1)
        b = random_logic_network("r", 10, 4, 25, seed=2)
        assert output_signatures(a) != output_signatures(b)

    def test_fanin_bound_respected(self):
        net = random_logic_network("r", 10, 4, 40, seed=5, max_fanin=3)
        for node in net.node_names:
            assert len(net.fanins(node)) <= 3

    def test_outputs_fall_back_to_inputs_when_tiny(self):
        net = random_logic_network("r", 6, 6, 2, seed=7)
        assert len(net.outputs) == 6

    def test_network_has_depth(self):
        net = random_logic_network("r", 10, 4, 60, seed=11, locality=8)
        assert net.depth() >= 3
