"""Unit tests for positional-notation cubes."""

import pytest

from repro.boolean.cube import Cube
from repro.errors import CoverError


class TestConstruction:
    def test_from_string_roundtrip(self):
        for text in ("1-0", "---", "111", "000", "0-1"):
            assert Cube.from_string(text).to_string() == text

    def test_from_string_accepts_2_as_dontcare(self):
        assert Cube.from_string("12").to_string() == "1-"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(CoverError):
            Cube.from_string("1x0")

    def test_contradictory_cube_rejected(self):
        with pytest.raises(CoverError):
            Cube(0b1, 0b1, 1)

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(CoverError):
            Cube(0b100, 0, 2)

    def test_negative_nvars_rejected(self):
        with pytest.raises(CoverError):
            Cube(0, 0, -1)

    def test_full_cube(self):
        cube = Cube.full(4)
        assert cube.is_full()
        assert cube.num_literals == 0
        assert cube.to_string() == "----"

    def test_from_literals(self):
        cube = Cube.from_literals({0: True, 2: False}, 3)
        assert cube.to_string() == "1-0"

    def test_from_literals_range_check(self):
        with pytest.raises(CoverError):
            Cube.from_literals({5: True}, 3)

    def test_minterm(self):
        cube = Cube.minterm(0b101, 3)
        assert cube.to_string() == "101"
        assert cube.is_minterm()

    def test_immutable(self):
        cube = Cube.full(2)
        with pytest.raises(AttributeError):
            cube.pos = 1


class TestInspection:
    def test_support_and_literal_count(self):
        cube = Cube.from_string("1-0-")
        assert cube.support == 0b0101
        assert cube.num_literals == 2

    def test_phase(self):
        cube = Cube.from_string("1-0")
        assert cube.phase(0) == "1"
        assert cube.phase(1) == "-"
        assert cube.phase(2) == "0"

    def test_literals_iteration(self):
        cube = Cube.from_string("10-")
        assert list(cube.literals()) == [(0, True), (1, False)]

    def test_num_minterms(self):
        assert Cube.from_string("1--").num_minterms() == 4
        assert Cube.from_string("111").num_minterms() == 1

    def test_minterms_enumeration(self):
        cube = Cube.from_string("1-0")
        points = sorted(cube.minterms())
        assert points == [0b001, 0b011]


class TestRelations:
    def test_containment(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_containment_opposite_phase(self):
        assert not Cube.from_string("1").contains(Cube.from_string("0"))

    def test_intersection(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        assert a.intersect(b).to_string() == "10-"

    def test_empty_intersection(self):
        assert Cube.from_string("1--").intersect(Cube.from_string("0--")) is None

    def test_distance(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("011")
        assert a.distance(b) == 2
        assert a.distance(a) == 0

    def test_consensus_exists_at_distance_one(self):
        a = Cube.from_string("1-1")
        b = Cube.from_string("0-1")
        assert a.consensus(b).to_string() == "--1"

    def test_consensus_none_otherwise(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("00-")
        assert a.consensus(b) is None
        assert a.consensus(a) is None  # distance 0

    def test_supercube(self):
        a = Cube.from_string("110")
        b = Cube.from_string("100")
        assert a.supercube(b).to_string() == "1-0"


class TestTransforms:
    def test_cofactor_drops_fixed_literals(self):
        cube = Cube.from_string("1-0")
        against = Cube.from_string("1--")
        assert cube.cofactor(against).to_string() == "--0"

    def test_cofactor_empty_when_disjoint(self):
        assert Cube.from_string("1--").cofactor(Cube.from_string("0--")) is None

    def test_restrict(self):
        cube = Cube.from_string("1-0")
        assert cube.restrict(0, True).to_string() == "--0"
        assert cube.restrict(0, False) is None
        assert cube.restrict(1, True).to_string() == "1-0"

    def test_without_var(self):
        assert Cube.from_string("110").without_var(1).to_string() == "1-0"

    def test_with_literal_overwrites(self):
        assert Cube.from_string("1--").with_literal(0, False).to_string() == "0--"

    def test_permute(self):
        cube = Cube.from_string("10")
        permuted = cube.permute({0: 1, 1: 0}, 2)
        assert permuted.to_string() == "01"

    def test_permute_out_of_range(self):
        with pytest.raises(CoverError):
            Cube.from_string("1").permute({0: 3}, 2)

    def test_evaluate(self):
        cube = Cube.from_string("1-0")
        assert cube.evaluate(0b001)
        assert cube.evaluate(0b011)
        assert not cube.evaluate(0b101)
        assert not cube.evaluate(0b000)


class TestDunder:
    def test_equality_and_hash(self):
        a = Cube.from_string("1-0")
        b = Cube.from_string("1-0")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Cube.from_string("1--")

    def test_ordering_is_total(self):
        cubes = [Cube.from_string(s) for s in ("1--", "0--", "---", "11-")]
        ordered = sorted(cubes)
        assert len(ordered) == 4

    def test_repr(self):
        assert "1-0" in repr(Cube.from_string("1-0"))
