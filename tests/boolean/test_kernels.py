"""Unit tests for kernel/co-kernel enumeration."""

import random

from repro.boolean.cover import Cover
from repro.boolean.divide import divide_by_cube, is_cube_free, make_cube_free
from repro.boolean.kernels import Kernel, kernels, level0_kernels
from tests.conftest import random_cover


class TestKernels:
    def test_textbook_example(self):
        # F = ac + ad + bc + bd + e has kernels {c+d}, {a+b}, and F itself.
        f = Cover.from_strings(["1-1--", "1--1-", "-11--", "-1-1-", "----1"])
        found = kernels(f)
        signatures = {
            frozenset(k.cover.to_strings()) for k in found
        }
        assert frozenset(["--1--", "---1-"]) in signatures  # c + d
        assert frozenset(["1----", "-1---"]) in signatures  # a + b
        assert any(k.cover.num_cubes == 5 for k in found)  # F itself

    def test_every_kernel_is_cube_free(self):
        rng = random.Random(41)
        for _ in range(80):
            cover = random_cover(rng, rng.randint(2, 6), max_cubes=6)
            if cover.num_cubes < 2:
                continue
            for k in kernels(cover):
                assert is_cube_free(k.cover), (cover.to_strings(), k)

    def test_cokernel_witnesses_division(self):
        rng = random.Random(43)
        for _ in range(60):
            cover = random_cover(rng, rng.randint(2, 5), max_cubes=6).scc()
            if cover.num_cubes < 2:
                continue
            for k in kernels(cover):
                if k.cokernel.is_full():
                    continue
                quotient = divide_by_cube(cover, k.cokernel)
                quotient, _ = make_cube_free(quotient)
                # The kernel must equal the cube-free quotient by its
                # co-kernel.
                assert quotient.canonical_key() == k.cover.canonical_key(), (
                    cover.to_strings(),
                    k.cover.to_strings(),
                    k.cokernel.to_string(),
                )

    def test_single_cube_has_no_proper_kernels(self):
        cover = Cover.from_strings(["110-"])
        assert kernels(cover, include_self=False) == []

    def test_level0_kernels_have_no_repeated_literal(self):
        f = Cover.from_strings(["1-1--", "1--1-", "-11--", "-1-1-", "----1"])
        for k in level0_kernels(f):
            # In a level-0 kernel no literal appears in 2+ cubes.
            for var in range(k.cover.nvars):
                pos, neg = k.cover.column_phases(var)
                assert pos < 2 and neg < 2

    def test_self_kernel_included_by_default(self):
        f = Cover.from_strings(["1-", "-1"])
        ks = kernels(f)
        assert any(k.cover.canonical_key() == f.canonical_key() for k in ks)

    def test_kernel_dataclass_fields(self):
        f = Cover.from_strings(["1-", "-1"])
        k = kernels(f)[0]
        assert isinstance(k, Kernel)
        assert k.level >= 0
