"""Hypothesis property-based tests for the Boolean substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.cover import Cover
from repro.boolean.divide import algebraic_product, divide
from repro.boolean.factor import factor, verify_factoring
from repro.boolean.minimize import minimize
from repro.boolean.unate import semantic_unateness, syntactic_unateness


@st.composite
def covers(draw, max_vars: int = 5, max_cubes: int = 6):
    nvars = draw(st.integers(min_value=1, max_value=max_vars))
    rows = draw(
        st.lists(
            st.text(alphabet="01-", min_size=nvars, max_size=nvars),
            min_size=0,
            max_size=max_cubes,
        )
    )
    return Cover.from_strings(rows) if rows else Cover.zero(nvars)


@st.composite
def cover_pairs(draw, max_vars: int = 5):
    nvars = draw(st.integers(min_value=1, max_value=max_vars))
    def rows():
        return st.lists(
            st.text(alphabet="01-", min_size=nvars, max_size=nvars),
            min_size=0,
            max_size=5,
        )
    a = draw(rows())
    b = draw(rows())
    def mk(r):
        return Cover.from_strings(r) if r else Cover.zero(nvars)

    return mk(a), mk(b)


@settings(max_examples=200, deadline=None)
@given(covers())
def test_complement_is_involutive(cover):
    assert cover.complement().complement().equivalent(cover)


@settings(max_examples=200, deadline=None)
@given(covers())
def test_complement_partitions_space(cover):
    comp = cover.complement()
    assert cover.union(comp).is_tautology()
    assert cover.product(comp).is_zero() or not any(
        cover.product(comp).truth_table()
    )


@settings(max_examples=200, deadline=None)
@given(covers())
def test_scc_preserves_function(cover):
    assert cover.scc().equivalent(cover)


@settings(max_examples=200, deadline=None)
@given(covers())
def test_tautology_agrees_with_truth_table(cover):
    assert cover.is_tautology() == all(cover.truth_table())


@settings(max_examples=200, deadline=None)
@given(covers())
def test_minterm_count_agrees_with_truth_table(cover):
    assert cover.num_minterms() == sum(cover.truth_table())


@settings(max_examples=150, deadline=None)
@given(cover_pairs())
def test_demorgan(pair):
    a, b = pair
    lhs = a.union(b).complement()
    rhs = a.complement().product(b.complement())
    assert lhs.equivalent(rhs)


@settings(max_examples=150, deadline=None)
@given(cover_pairs())
def test_containment_is_antisymmetric_on_equivalents(pair):
    a, b = pair
    if a.covers(b) and b.covers(a):
        assert a.equivalent(b)


@settings(max_examples=150, deadline=None)
@given(covers(max_cubes=8))
def test_minimize_preserves_function(cover):
    assert minimize(cover).equivalent(cover)


@settings(max_examples=150, deadline=None)
@given(covers(max_cubes=8))
def test_factor_preserves_function(cover):
    form = factor(cover)
    assert verify_factoring(cover.scc(), form)


@settings(max_examples=100, deadline=None)
@given(cover_pairs())
def test_weak_division_reconstructs(pair):
    f, d = pair
    if f.is_zero() or d.is_zero():
        return
    q, r = divide(f, d)
    if q.is_zero():
        assert r == f
    else:
        assert algebraic_product(q, d).union(r).equivalent(f)


@settings(max_examples=150, deadline=None)
@given(covers())
def test_syntactic_unate_implies_semantic_unate(cover):
    if syntactic_unateness(cover).is_unate:
        assert semantic_unateness(cover).is_unate
