"""Unit tests for the named-variable BooleanFunction wrapper."""

import pytest

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction, iter_assignments
from repro.errors import CoverError


class TestParse:
    def test_sop_expression(self):
        f = BooleanFunction.parse("a b + c' d")
        assert f.variables == ("a", "b", "c", "d")
        assert f.evaluate({"a": 1, "b": 1, "c": 0, "d": 0})
        assert f.evaluate({"a": 0, "b": 0, "c": 0, "d": 1})
        assert not f.evaluate({"a": 0, "b": 1, "c": 1, "d": 1})

    def test_tilde_and_bang_complements(self):
        f = BooleanFunction.parse("~a + !b")
        assert f.evaluate({"a": 0, "b": 1})
        assert not f.evaluate({"a": 1, "b": 1})

    def test_constants(self):
        assert BooleanFunction.parse("1").evaluate({})
        assert not BooleanFunction.parse("0").evaluate({})

    def test_star_and_amp_separators(self):
        f = BooleanFunction.parse("a*b + c&d")
        assert f.evaluate({"a": 1, "b": 1, "c": 0, "d": 0})

    def test_contradictory_literal_rejected(self):
        with pytest.raises(CoverError):
            BooleanFunction.parse("a a'")

    def test_bad_token_rejected(self):
        with pytest.raises(CoverError):
            BooleanFunction.parse("a + 3x")

    def test_expression_roundtrip(self):
        f = BooleanFunction.parse("a b' + c")
        assert BooleanFunction.parse(f.to_expression()).equivalent(f)


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(CoverError):
            BooleanFunction(Cover.zero(2), ("a", "a"))

    def test_name_count_mismatch(self):
        with pytest.raises(CoverError):
            BooleanFunction(Cover.zero(2), ("a",))

    def test_from_sop_empty_rows_is_zero(self):
        f = BooleanFunction.from_sop([], ("a", "b"))
        assert f.cover.is_zero()

    def test_immutable(self):
        f = BooleanFunction.parse("a")
        with pytest.raises(AttributeError):
            f.variables = ("b",)


class TestInspection:
    def test_support_names(self):
        f = BooleanFunction(Cover.from_strings(["1--"]), ("a", "b", "c"))
        assert f.support_names() == ["a"]
        assert f.depends_on("a")
        assert not f.depends_on("b")
        assert not f.depends_on("zz")

    def test_index_of(self):
        f = BooleanFunction.parse("a b")
        assert f.index_of("b") == 1
        with pytest.raises(CoverError):
            f.index_of("zz")

    def test_counts(self):
        f = BooleanFunction.parse("a b + c")
        assert f.num_cubes == 2
        assert f.num_literals == 3


class TestTransforms:
    def test_trimmed_drops_unused(self):
        f = BooleanFunction(Cover.from_strings(["1--"]), ("a", "b", "c"))
        t = f.trimmed()
        assert t.variables == ("a",)
        assert t.evaluate({"a": 1})

    def test_rebased_reorders(self):
        f = BooleanFunction.parse("a b'")
        g = f.rebased(["b", "a", "z"])
        assert g.variables == ("b", "a", "z")
        assert g.evaluate({"a": 1, "b": 0, "z": 0})

    def test_rebased_missing_support(self):
        with pytest.raises(CoverError):
            BooleanFunction.parse("a b").rebased(["a"])

    def test_renamed(self):
        f = BooleanFunction.parse("a b").renamed({"a": "x"})
        assert f.variables == ("x", "b")

    def test_complement(self):
        f = BooleanFunction.parse("a")
        assert f.complement().evaluate({"a": 0})

    def test_substitute_simple(self):
        f = BooleanFunction.parse("a b + c")
        g = BooleanFunction.parse("d e")
        h = f.substitute("c", g)
        assert set(h.variables) == {"a", "b", "d", "e"}
        assert h.evaluate({"a": 0, "b": 0, "d": 1, "e": 1})
        assert not h.evaluate({"a": 0, "b": 0, "d": 1, "e": 0})

    def test_substitute_missing_variable_is_noop(self):
        f = BooleanFunction.parse("a")
        assert f.substitute("zz", BooleanFunction.parse("b")) is f

    def test_substitute_negative_phase(self):
        f = BooleanFunction.parse("a c' + b c")
        g = BooleanFunction.parse("a b")
        h = f.substitute("c", g)
        for asg in iter_assignments(["a", "b"]):
            c = asg["a"] and asg["b"]
            want = (asg["a"] and not c) or (asg["b"] and c)
            assert h.evaluate(asg) == want

    def test_equivalent_name_aware(self):
        f = BooleanFunction.parse("a + b")
        g = BooleanFunction.parse("b + a")
        assert f.equivalent(g)
        assert not f.equivalent(BooleanFunction.parse("a b"))


class TestIterAssignments:
    def test_counts(self):
        assert len(list(iter_assignments(["a", "b"]))) == 4
        assert list(iter_assignments([])) == [{}]
