"""Unit tests for the espresso-lite two-level minimizer."""

import random

from repro.boolean.cover import Cover
from repro.boolean.minimize import expand, irredundant, minimize, reduce_cover
from tests.conftest import random_cover


class TestExpand:
    def test_expands_to_primes(self):
        # f = ab + ab' = a; expansion against the offset discovers it.
        cover = Cover.from_strings(["11", "10"])
        offset = cover.complement()
        result = expand(cover, offset)
        assert result.to_strings() == ["1-"]

    def test_no_expansion_into_offset(self):
        cover = Cover.from_strings(["11"])
        offset = cover.complement()
        result = expand(cover, offset)
        assert result.equivalent(cover)


class TestIrredundant:
    def test_removes_covered_cube(self):
        # ab is covered by a.
        cover = Cover.from_strings(["1-", "11"])
        result = irredundant(cover)
        assert result.to_strings() == ["1-"]

    def test_keeps_essential_cubes(self):
        cover = Cover.from_strings(["1-", "-1"])
        assert irredundant(cover).num_cubes == 2

    def test_consensus_redundancy(self):
        # ab + a'c + bc: bc is redundant (consensus).
        cover = Cover.from_strings(["11-", "0-1", "-11"])
        result = irredundant(cover)
        assert result.num_cubes == 2
        assert result.equivalent(cover)


class TestReduce:
    def test_reduce_keeps_function_on_care_set(self):
        rng = random.Random(61)
        for _ in range(40):
            cover = random_cover(rng, rng.randint(1, 5), max_cubes=5)
            reduced = reduce_cover(cover)
            assert reduced.equivalent(cover)


class TestMinimize:
    def test_classic_example(self):
        # f = a b + a b' + a' b  ==  a + b (2 cubes, 2 literals).
        cover = Cover.from_strings(["11", "10", "01"])
        result = minimize(cover)
        assert result.num_cubes == 2
        assert result.num_literals == 2
        assert result.equivalent(cover)

    def test_constant_one_detected(self):
        cover = Cover.from_strings(["1-", "0-"])
        assert minimize(cover).is_tautology()

    def test_constant_zero_passthrough(self):
        assert minimize(Cover.zero(3)).is_zero()

    def test_with_dont_cares(self):
        # ON = {11}, DC = {10}: minimal result is just `a`.
        on = Cover.from_strings(["11"])
        dc = Cover.from_strings(["10"])
        result = minimize(on, dc)
        assert result.to_strings() == ["1-"]

    def test_never_increases_cost_fuzz(self):
        rng = random.Random(67)
        for _ in range(80):
            cover = random_cover(rng, rng.randint(1, 5), max_cubes=6).scc()
            if cover.is_zero():
                continue
            result = minimize(cover)
            assert result.equivalent(cover)
            assert result.num_cubes <= max(cover.num_cubes, 1)

    def test_dc_fuzz_respects_care_set(self):
        rng = random.Random(71)
        for _ in range(60):
            n = rng.randint(1, 5)
            on = random_cover(rng, n, max_cubes=4)
            dc = random_cover(rng, n, max_cubes=3)
            if on.is_zero():
                continue
            result = minimize(on, dc)
            for p in range(1 << n):
                if dc.evaluate(p):
                    continue
                assert result.evaluate(p) == on.evaluate(p), (
                    on.to_strings(),
                    dc.to_strings(),
                    p,
                )

    def test_irredundant_result(self):
        rng = random.Random(73)
        for _ in range(40):
            cover = random_cover(rng, rng.randint(1, 5), max_cubes=6)
            if cover.is_zero() or cover.is_tautology():
                continue
            result = minimize(cover)
            # Dropping any single cube must change the function.
            for i in range(result.num_cubes):
                rest = Cover(
                    result.cubes[:i] + result.cubes[i + 1 :], result.nvars
                )
                assert not rest.equivalent(result)
