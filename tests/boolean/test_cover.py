"""Unit tests for SOP covers and the recursive-paradigm operations."""

import random

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.errors import CoverError
from tests.conftest import random_cover


class TestConstruction:
    def test_zero_and_one(self):
        assert Cover.zero(3).is_zero()
        assert Cover.one(3).is_tautology()

    def test_from_strings_mismatched_rows(self):
        with pytest.raises(CoverError):
            Cover.from_strings(["1-", "0"])

    def test_mixed_nvars_rejected(self):
        with pytest.raises(CoverError):
            Cover([Cube.full(2)], 3)

    def test_literal(self):
        cover = Cover.literal(1, False, 3)
        assert cover.to_strings() == ["-0-"]

    def test_from_truth_table(self):
        cover = Cover.from_truth_table([0, 1, 1, 0], 2)  # XOR
        assert sorted(cover.to_strings()) == ["01", "10"]

    def test_from_truth_table_length_check(self):
        with pytest.raises(CoverError):
            Cover.from_truth_table([0, 1, 1], 2)

    def test_immutability(self):
        cover = Cover.zero(1)
        with pytest.raises(AttributeError):
            cover.nvars = 2


class TestEvaluation:
    def test_evaluate_or_of_cubes(self):
        cover = Cover.from_strings(["11--", "--11"])
        assert cover.evaluate(0b0011)
        assert cover.evaluate(0b1100)
        assert not cover.evaluate(0b0101)

    def test_truth_table(self):
        cover = Cover.from_strings(["1-"])
        assert cover.truth_table() == [0, 1, 0, 1]

    def test_num_minterms_matches_truth_table(self):
        rng = random.Random(7)
        for _ in range(50):
            cover = random_cover(rng, rng.randint(1, 6))
            assert cover.num_minterms() == sum(cover.truth_table())


class TestScc:
    def test_removes_contained_cubes(self):
        cover = Cover.from_strings(["1--", "11-", "111"])
        assert cover.scc().to_strings() == ["1--"]

    def test_deduplicates(self):
        cover = Cover.from_strings(["10-", "10-"])
        assert cover.scc().num_cubes == 1

    def test_universal_cube_dominates(self):
        cover = Cover.from_strings(["---", "101"])
        assert cover.scc().to_strings() == ["---"]

    def test_canonical_key_is_order_independent(self):
        a = Cover.from_strings(["1--", "--1"])
        b = Cover.from_strings(["--1", "1--"])
        assert a.canonical_key() == b.canonical_key()

    def test_scc_marker_survives_pickling(self):
        """An SCC-form cover must stay its own SCC form after a round trip.

        The reduced cover's cube order is the parent cover's tie-break,
        not a function of its own cubes — if pickling dropped the
        ``scc() is self`` marker, a remote worker would re-reduce the
        cover into a different cube order and distributed synthesis
        would stop being byte-identical to serial.
        """
        import pickle

        parent = random_cover(random.Random(7), nvars=6, max_cubes=24)
        reduced = parent.scc()
        assert reduced.scc() is reduced
        clone = pickle.loads(pickle.dumps(reduced))
        assert clone.scc() is clone
        assert clone.cubes == reduced.cubes
        assert clone.scc().cubes == reduced.scc().cubes
        # A cover that never ran scc() still pickles through the plain
        # constructor path and re-reduces deterministically.
        fresh = pickle.loads(pickle.dumps(parent))
        assert fresh.scc().cubes == pickle.loads(
            pickle.dumps(fresh)
        ).scc().cubes


class TestCofactor:
    def test_shannon_partition(self):
        cover = Cover.from_strings(["11-", "0-1"])
        f0, f1 = cover.shannon(0)
        assert f0.to_strings() == ["--1"]
        assert f1.to_strings() == ["-1-"]

    def test_cofactor_by_cube(self):
        cover = Cover.from_strings(["11-", "--1"])
        result = cover.cofactor(Cube.from_string("1--"))
        assert sorted(result.to_strings()) == ["--1", "-1-"]

    def test_smooth(self):
        cover = Cover.from_strings(["10-"])
        smoothed = cover.smooth(1)
        assert smoothed.to_strings() == ["1--"]


class TestTautology:
    def test_shannon_pair_is_tautology(self):
        assert Cover.from_strings(["1-", "0-"]).is_tautology()

    def test_incomplete_cover_is_not(self):
        assert not Cover.from_strings(["1-", "01"]).is_tautology()

    def test_empty_cover_is_not(self):
        assert not Cover.zero(2).is_tautology()

    def test_zero_vars_nonempty_is_tautology(self):
        assert Cover.one(0).is_tautology()

    def test_fuzz_against_truth_table(self):
        rng = random.Random(11)
        for _ in range(200):
            cover = random_cover(rng, rng.randint(1, 6))
            assert cover.is_tautology() == all(cover.truth_table())


class TestComplement:
    def test_complement_of_zero_is_one(self):
        assert Cover.zero(2).complement().is_tautology()

    def test_complement_of_one_is_zero(self):
        assert Cover.one(2).complement().is_zero()

    def test_single_cube_de_morgan(self):
        comp = Cover.from_strings(["10"]).complement()
        assert sorted(comp.to_strings()) == ["-1", "0-"]

    def test_involution_fuzz(self):
        rng = random.Random(13)
        for _ in range(100):
            cover = random_cover(rng, rng.randint(1, 6))
            assert cover.complement().complement().equivalent(cover)

    def test_complement_truth_table_fuzz(self):
        rng = random.Random(17)
        for _ in range(100):
            cover = random_cover(rng, rng.randint(1, 6))
            want = [1 - b for b in cover.truth_table()]
            assert cover.complement().truth_table() == want


class TestContainmentEquivalence:
    def test_contains_cube(self):
        cover = Cover.from_strings(["1-", "01"])
        assert cover.contains_cube(Cube.from_string("11"))
        assert not cover.contains_cube(Cube.from_string("00"))

    def test_covers(self):
        big = Cover.from_strings(["1-", "-1"])
        small = Cover.from_strings(["11"])
        assert big.covers(small)
        assert not small.covers(big)

    def test_equivalent_modulo_representation(self):
        a = Cover.from_strings(["1-", "-1"])
        b = Cover.from_strings(["10", "-1"])
        assert a.equivalent(b)

    def test_equivalent_dimension_mismatch(self):
        with pytest.raises(CoverError):
            Cover.zero(2).equivalent(Cover.zero(3))


class TestConnectives:
    def test_union_product_xor_fuzz(self):
        rng = random.Random(19)
        for _ in range(80):
            n = rng.randint(1, 5)
            a, b = random_cover(rng, n), random_cover(rng, n)
            ta, tb = a.truth_table(), b.truth_table()
            assert a.union(b).truth_table() == [x | y for x, y in zip(ta, tb)]
            assert a.product(b).truth_table() == [x & y for x, y in zip(ta, tb)]
            assert a.xor(b).truth_table() == [x ^ y for x, y in zip(ta, tb)]

    def test_product_dimension_mismatch(self):
        with pytest.raises(CoverError):
            Cover.zero(2).product(Cover.zero(3))


class TestCompose:
    def test_compose_positive_unate(self):
        # f = x0 x1, substitute x1 <- x2 + x3
        f = Cover.from_strings(["11--"])
        g = Cover.from_strings(["--1-", "---1"])
        composed = f.compose(1, g)
        want = Cover.from_strings(["1-1-", "1--1"])
        assert composed.equivalent(want)

    def test_compose_binate_needs_complement(self):
        # f = x0'x1 + x0 x1'  (XOR); substituting x0 <- x2 gives x2 XOR x1.
        f = Cover.from_strings(["01--", "10--"])
        g = Cover.from_strings(["--1-"])
        composed = f.compose(0, g)
        for p in range(16):
            x1 = (p >> 1) & 1
            x2 = (p >> 2) & 1
            assert composed.evaluate(p) == bool(x2 ^ x1)

    def test_compose_fuzz(self):
        rng = random.Random(23)
        for _ in range(60):
            n = rng.randint(2, 5)
            f = random_cover(rng, n)
            g = random_cover(rng, n)
            var = rng.randrange(n)
            # Ensure g does not depend on var (acyclic substitution).
            g = g.smooth(var)
            composed = f.compose(var, g)
            for p in range(1 << n):
                gval = g.evaluate(p)
                point = (p | (1 << var)) if gval else (p & ~(1 << var))
                assert composed.evaluate(p) == f.evaluate(point)


class TestMinterms:
    def test_minterms_unique(self):
        cover = Cover.from_strings(["1-", "-1"])
        points = list(cover.minterms())
        assert sorted(points) == [1, 2, 3]
        assert len(set(points)) == len(points)

    def test_iteration_and_len(self):
        cover = Cover.from_strings(["1-", "-1"])
        assert len(cover) == 2
        assert all(isinstance(c, Cube) for c in cover)
