"""Unit tests for unateness analysis and positive-unate normalization."""

import random

from repro.boolean.cover import Cover
from repro.boolean.unate import (
    Phase,
    is_unate,
    semantic_unateness,
    syntactic_unateness,
    to_positive_unate,
)
from tests.conftest import random_cover


class TestSyntactic:
    def test_phases(self):
        cover = Cover.from_strings(["10--", "1-1-"])
        report = syntactic_unateness(cover)
        assert report.phases == (
            Phase.POSITIVE,
            Phase.NEGATIVE,
            Phase.POSITIVE,
            Phase.ABSENT,
        )

    def test_binate_detection(self):
        cover = Cover.from_strings(["1-", "01"])
        report = syntactic_unateness(cover)
        assert report.phases[0] is Phase.BINATE
        assert not report.is_unate
        assert report.binate_vars() == [0]

    def test_positive_unate_flag(self):
        assert syntactic_unateness(
            Cover.from_strings(["11-", "--1"])
        ).is_positive_unate
        assert not syntactic_unateness(
            Cover.from_strings(["10-"])
        ).is_positive_unate

    def test_negative_vars(self):
        report = syntactic_unateness(Cover.from_strings(["00-"]))
        assert report.negative_vars() == [0, 1]


class TestSemantic:
    def test_redundant_cover_can_hide_unateness(self):
        # f = x0 + x0'x1 is semantically positive in x0 (equals x0 + x1).
        cover = Cover.from_strings(["1-", "01"])
        assert not syntactic_unateness(cover).is_unate
        report = semantic_unateness(cover)
        assert report.phases[0] is Phase.POSITIVE
        assert report.is_unate

    def test_truly_binate(self):
        xor = Cover.from_strings(["10", "01"])
        report = semantic_unateness(xor)
        assert report.phases == (Phase.BINATE, Phase.BINATE)

    def test_independent_variable_is_absent(self):
        cover = Cover.from_strings(["1-", "0-"])  # tautology: no dependence
        report = semantic_unateness(cover)
        assert report.phases == (Phase.ABSENT, Phase.ABSENT)

    def test_semantic_agrees_with_monotonicity_fuzz(self):
        rng = random.Random(3)
        for _ in range(60):
            n = rng.randint(1, 5)
            cover = random_cover(rng, n)
            report = semantic_unateness(cover)
            tt = cover.truth_table()
            for var in range(n):
                ups = downs = False
                for p in range(1 << n):
                    if not (p >> var) & 1:
                        lo, hi = tt[p], tt[p | (1 << var)]
                        ups |= lo < hi
                        downs |= lo > hi
                if ups and downs:
                    assert report.phases[var] is Phase.BINATE
                elif ups:
                    assert report.phases[var] is Phase.POSITIVE
                elif downs:
                    assert report.phases[var] is Phase.NEGATIVE
                else:
                    assert report.phases[var] is Phase.ABSENT


class TestIsUnate:
    def test_dispatch(self):
        cover = Cover.from_strings(["1-", "01"])
        assert not is_unate(cover)
        assert is_unate(cover, semantic=True)


class TestToPositiveUnate:
    def test_flips_negative_columns(self):
        cover = Cover.from_strings(["10-", "1-0"])
        positive, flipped = to_positive_unate(cover)
        assert flipped == (False, True, True)
        assert sorted(positive.to_strings()) == ["1-1", "11-"]

    def test_identity_on_positive_cover(self):
        cover = Cover.from_strings(["11-", "--1"])
        positive, flipped = to_positive_unate(cover)
        assert positive == cover
        assert flipped == (False, False, False)

    def test_flip_preserves_function_modulo_phase(self):
        rng = random.Random(9)
        for _ in range(40):
            cover = random_cover(rng, 4)
            if not syntactic_unateness(cover).is_unate:
                continue
            positive, flipped = to_positive_unate(cover)
            for p in range(16):
                q = p
                for var, flip in enumerate(flipped):
                    if flip:
                        q ^= 1 << var
                assert positive.evaluate(q) == cover.evaluate(p)
