"""Unit tests for algebraic (weak) division."""

import random

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.divide import (
    algebraic_product,
    common_cube,
    cube_divide,
    divide,
    divide_by_cube,
    is_cube_free,
    make_cube_free,
)
from repro.errors import CoverError
from tests.conftest import random_cover


class TestCubeDivide:
    def test_divides_when_literals_present(self):
        cube = Cube.from_string("110")
        divisor = Cube.from_string("1--")
        assert cube_divide(cube, divisor).to_string() == "-10"

    def test_fails_when_literal_missing(self):
        assert cube_divide(Cube.from_string("-10"), Cube.from_string("1--")) is None

    def test_fails_on_opposite_phase(self):
        assert cube_divide(Cube.from_string("010"), Cube.from_string("1--")) is None


class TestDivideByCube:
    def test_selects_divisible_cubes(self):
        cover = Cover.from_strings(["11-", "1-1", "-01"])
        q = divide_by_cube(cover, Cube.from_string("1--"))
        assert sorted(q.to_strings()) == ["--1", "-1-"]


class TestDivide:
    def test_textbook_example(self):
        # F = ac + ad + bc + bd + e;  D = a + b  =>  Q = c + d, R = e
        f = Cover.from_strings(["1-1--", "1--1-", "-11--", "-1-1-", "----1"])
        d = Cover.from_strings(["1----", "-1---"])
        q, r = divide(f, d)
        assert sorted(q.to_strings()) == ["---1-", "--1--"]
        assert r.to_strings() == ["----1"]

    def test_reconstruction_identity(self):
        rng = random.Random(31)
        for _ in range(100):
            n = rng.randint(2, 6)
            f = random_cover(rng, n, max_cubes=8)
            if f.is_zero():
                continue
            d = random_cover(rng, n, max_cubes=3)
            if d.is_zero():
                continue
            q, r = divide(f, d)
            if q.is_zero():
                assert r == f
                continue
            rebuilt = algebraic_product(q, d).union(r)
            assert rebuilt.equivalent(f)

    def test_zero_quotient(self):
        f = Cover.from_strings(["1--"])
        d = Cover.from_strings(["-1-", "--1"])
        q, r = divide(f, d)
        assert q.is_zero()
        assert r == f

    def test_division_by_zero_rejected(self):
        with pytest.raises(CoverError):
            divide(Cover.from_strings(["1-"]), Cover.zero(2))

    def test_dimension_mismatch(self):
        with pytest.raises(CoverError):
            divide(Cover.zero(2), Cover.one(3))


class TestAlgebraicProduct:
    def test_disjoint_supports_required(self):
        a = Cover.from_strings(["1-"])
        b = Cover.from_strings(["1-"])
        with pytest.raises(CoverError):
            algebraic_product(a, b)

    def test_product(self):
        a = Cover.from_strings(["1---", "-1--"])
        b = Cover.from_strings(["--1-", "---1"])
        prod = algebraic_product(a, b)
        assert prod.num_cubes == 4


class TestCommonCube:
    def test_common_cube(self):
        cover = Cover.from_strings(["110", "1-0", "100"])
        assert common_cube(cover).to_string() == "1-0"

    def test_no_common_cube(self):
        cover = Cover.from_strings(["1--", "-1-"])
        assert common_cube(cover).is_full()

    def test_make_cube_free(self):
        cover = Cover.from_strings(["11-", "1-1"])
        free, cc = make_cube_free(cover)
        assert cc.to_string() == "1--"
        assert sorted(free.to_strings()) == ["--1", "-1-"]
        assert is_cube_free(free)

    def test_is_cube_free_on_empty(self):
        assert not is_cube_free(Cover.zero(2))
