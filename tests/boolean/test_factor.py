"""Unit tests for algebraic factoring into AND/OR trees."""

import random

from repro.boolean.cover import Cover
from repro.boolean.factor import (
    FactorAnd,
    FactorConst,
    FactorLit,
    FactorOr,
    factor,
    factored_literal_count,
    verify_factoring,
)
from tests.conftest import random_cover


class TestFactor:
    def test_constants(self):
        assert factor(Cover.zero(2)) == FactorConst(False)
        assert factor(Cover.one(2)) == FactorConst(True)
        assert factor(Cover.from_strings(["--", "1-"])) == FactorConst(True)

    def test_single_literal(self):
        form = factor(Cover.from_strings(["-0-"]))
        assert form == FactorLit(1, False)

    def test_single_cube_becomes_and(self):
        form = factor(Cover.from_strings(["110"]))
        assert isinstance(form, FactorAnd)
        assert form.num_literals() == 3

    def test_factors_common_literal(self):
        # ab + ac -> a(b + c): 3 literals, not 4.
        cover = Cover.from_strings(["11-", "1-1"])
        form = factor(cover)
        assert form.num_literals() == 3
        assert verify_factoring(cover, form)

    def test_textbook_factoring(self):
        # ac + ad + bc + bd + e -> (a+b)(c+d) + e: 5 literals.
        cover = Cover.from_strings(
            ["1-1--", "1--1-", "-11--", "-1-1-", "----1"]
        )
        form = factor(cover)
        assert form.num_literals() == 5
        assert verify_factoring(cover, form)

    def test_or_of_disjoint_cubes(self):
        cover = Cover.from_strings(["11--", "--11"])
        form = factor(cover)
        assert isinstance(form, FactorOr)
        assert form.num_literals() == 4

    def test_fuzz_correctness(self):
        rng = random.Random(51)
        for _ in range(150):
            cover = random_cover(rng, rng.randint(1, 6), max_cubes=7)
            form = factor(cover)
            assert verify_factoring(cover.scc(), form), cover.to_strings()

    def test_fuzz_never_worse_than_flat(self):
        rng = random.Random(53)
        for _ in range(80):
            cover = random_cover(rng, rng.randint(1, 6), max_cubes=7).scc()
            assert factored_literal_count(cover) <= max(cover.num_literals, 1)


class TestExpressionRendering:
    def test_to_expression_with_parens(self):
        cover = Cover.from_strings(["11-", "1-1"])
        form = factor(cover)
        text = form.to_expression(("a", "b", "c"))
        assert "a" in text and "(" in text

    def test_const_rendering(self):
        assert FactorConst(True).to_expression(()) == "1"
        assert FactorConst(False).to_expression(()) == "0"

    def test_literal_rendering(self):
        assert FactorLit(0, False).to_expression(("x",)) == "x'"


class TestEvaluation:
    def test_tree_evaluation_matches_cover(self):
        cover = Cover.from_strings(["10-", "-11"])
        form = factor(cover)
        for p in range(8):
            assert form.evaluate(p) == cover.evaluate(p)
