"""Differential suite: packed bitset kernels vs legacy cube semantics.

Every packed kernel must agree bit-for-bit with the per-cube / per-point
definitions it replaced, on both backends (numpy word arrays and the pure
Python int fallback).  Property-based inputs come from the same cover
strategy the boolean substrate's other property tests use.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean import bitset
from repro.boolean.bitset import BitVec
from repro.boolean.cover import Cover, _count_minterms, _is_tautology
from repro.boolean.cube import Cube

needs_numpy = pytest.mark.skipif(
    not bitset._numpy_available(), reason="numpy not installed"
)
BACKENDS = (pytest.param("numpy", marks=needs_numpy), "python")


@st.composite
def covers(draw, max_vars: int = 6, max_cubes: int = 6):
    nvars = draw(st.integers(min_value=1, max_value=max_vars))
    rows = draw(
        st.lists(
            st.text(alphabet="01-", min_size=nvars, max_size=nvars),
            min_size=0,
            max_size=max_cubes,
        )
    )
    return Cover.from_strings(rows) if rows else Cover.zero(nvars)


def legacy_truth_table(cover: Cover) -> list[int]:
    """The pre-substrate definition: a per-cube loop at every point."""
    return [
        int(any(cube.evaluate(p) for cube in cover.cubes))
        for p in range(1 << cover.nvars)
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@given(cover=covers())
@settings(max_examples=60, deadline=None)
def test_cover_table_matches_legacy_evaluation(backend, cover):
    with bitset.force_backend(backend):
        table = bitset.cover_table(cover)
        assert table.to_bits() == legacy_truth_table(cover)
        assert table.count() == sum(legacy_truth_table(cover))


@pytest.mark.parametrize("backend", BACKENDS)
@given(cover=covers(), var=st.integers(min_value=0, max_value=5),
       value=st.booleans())
@settings(max_examples=60, deadline=None)
def test_cofactor_table_matches_restrict(backend, cover, var, value):
    var = var % cover.nvars
    with bitset.force_backend(backend):
        table = bitset.cover_table(cover)
        packed = bitset.cofactor_table(table, cover.nvars, var, value)
        assert packed.to_bits() == legacy_truth_table(
            cover.restrict(var, value)
        )


@pytest.mark.parametrize("backend", BACKENDS)
@given(cover=covers())
@settings(max_examples=60, deadline=None)
def test_tautology_matches_unate_recursion(backend, cover):
    with bitset.force_backend(backend):
        table = bitset.cover_table(cover)
        assert bitset.table_is_tautology(table) == _is_tautology(
            cover.canonical_key()
        )


@pytest.mark.parametrize("backend", BACKENDS)
@given(a=covers(max_vars=4), b=covers(max_vars=4))
@settings(max_examples=60, deadline=None)
def test_xor_matches_cover_xor(backend, a, b):
    nvars = max(a.nvars, b.nvars)
    a = Cover([Cube(c.pos, c.neg, nvars) for c in a.cubes], nvars)
    b = Cover([Cube(c.pos, c.neg, nvars) for c in b.cubes], nvars)
    with bitset.force_backend(backend):
        packed = bitset.cover_table(a) ^ bitset.cover_table(b)
        assert packed.to_bits() == legacy_truth_table(a.xor(b))


@pytest.mark.parametrize("backend", BACKENDS)
@given(cover=covers())
@settings(max_examples=60, deadline=None)
def test_chow_matches_restricted_minterm_counts(backend, cover):
    with bitset.force_backend(backend):
        table = bitset.cover_table(cover)
        chow = bitset.chow_from_table(
            table, cover.nvars, cover.support_vars()
        )
    for var, value in chow.items():
        legacy = _count_minterms(cover.restrict(var, True).canonical_key())
        assert value == legacy


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    weights=st.lists(
        st.integers(min_value=-7, max_value=7), min_size=0, max_size=8
    )
)
@settings(max_examples=60, deadline=None)
def test_weighted_sums_match_pointwise(backend, weights):
    with bitset.force_backend(backend):
        sums = [int(s) for s in bitset.weighted_sums(weights)]
    expected = [
        sum(w for i, w in enumerate(weights) if (p >> i) & 1)
        for p in range(1 << len(weights))
    ]
    assert sums == expected


@needs_numpy
@given(cover=covers())
@settings(max_examples=40, deadline=None)
def test_backends_agree_bit_for_bit(cover):
    with bitset.force_backend("numpy"):
        via_numpy = bitset.cover_table(cover).to_int()
    with bitset.force_backend("python"):
        via_python = bitset.cover_table(cover).to_int()
    assert via_numpy == via_python


@pytest.mark.parametrize("backend", BACKENDS)
@given(cover=covers(max_vars=4), var=st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_smooth_matches_cover_smooth(backend, cover, var):
    var = var % cover.nvars
    with bitset.force_backend(backend):
        table = bitset.cover_table(cover)
        packed = bitset.smooth_table(table, cover.nvars, var)
        assert packed.to_bits() == legacy_truth_table(cover.smooth(var))


class TestBitVecBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roundtrip_and_algebra(self, backend):
        with bitset.force_backend(backend):
            a = BitVec.from_int(0b1011_0101, 8)
            b = BitVec.from_int(0b0110_0110, 8)
            assert (a & b).to_int() == 0b0010_0100
            assert (a | b).to_int() == 0b1111_0111
            assert (a ^ b).to_int() == 0b1101_0011
            assert a.andnot(b).to_int() == 0b1001_0001
            assert a.invert().to_int() == 0b0100_1010
            assert a.count() == 5
            assert a.test(0) and not a.test(1)
            assert BitVec.from_bits(a.to_bits()) == a

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_wide_vectors(self, backend):
        # Cross the single-word boundary: 200 bits spans four words.
        with bitset.force_backend(backend):
            value = (1 << 199) | (1 << 64) | 1
            v = BitVec.from_int(value, 200)
            assert v.to_int() == value
            assert v.count() == 3
            assert v.invert().count() == 197
            assert not v.is_zero() and not v.is_ones()
            assert BitVec.ones(200).is_ones()

    def test_variable_column_is_cached_per_backend(self):
        with bitset.force_backend("python"):
            first = bitset.variable_column(2, 4)
            again = bitset.variable_column(2, 4)
            assert first is again


class TestCoverMemoization:
    def test_construction_dedupes_exact_cubes(self):
        cube = Cube.from_string("1-0")
        cover = Cover([cube, cube, Cube.from_string("01-"), cube], 3)
        assert cover.num_cubes == 2

    def test_truth_table_memoized_on_instance(self):
        cover = Cover.from_strings(["1-0", "01-"])
        first = cover.packed_table()
        assert cover.packed_table() is first
        # truth_table() hands out fresh lists: mutation must not leak back.
        bits = cover.truth_table()
        bits[0] ^= 1
        assert cover.truth_table() != bits

    def test_canonical_key_and_scc_memoized(self):
        cover = Cover.from_strings(["1--", "11-", "0-1"])
        assert cover.canonical_key() is cover.canonical_key()
        reduced = cover.scc()
        assert cover.scc() is reduced
        # The SCC form knows it is already reduced.
        assert reduced.scc() is reduced

    def test_cached_properties_match_recomputation(self):
        cover = Cover.from_strings(["1-0", "01-", "-11"])
        assert cover.num_literals == sum(
            c.num_literals for c in cover.cubes
        )
        expected = 0
        for c in cover.cubes:
            expected |= c.support
        assert cover.support == expected

    def test_pickle_drops_caches_but_preserves_value(self):
        import pickle

        cover = Cover.from_strings(["1-0", "01-"])
        cover.packed_table()
        clone = pickle.loads(pickle.dumps(cover))
        assert clone == cover
        assert clone.truth_table() == cover.truth_table()
