"""Unit tests for the weight-variation Monte Carlo (Section VI-C)."""

import random

import numpy as np

from repro.boolean.function import BooleanFunction
from repro.core.defects import (
    circuit_failure_probability,
    perturb_weights,
    run_defect_trial,
    suite_failure_rate,
)
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.network.network import BooleanNetwork
from tests.conftest import random_network


def and_network():
    net = BooleanNetwork("andnet")
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", BooleanFunction.parse("a b"))
    net.add_output("f")
    return net


class TestPerturbation:
    def test_noise_bounded_by_half_v(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        rng = random.Random(0)
        for v in (0.5, 1.0, 2.0):
            noise = perturb_weights(th, v, rng)
            for gate_noise in noise.values():
                assert np.all(np.abs(gate_noise) <= v / 2 + 1e-12)

    def test_zero_v_never_fails(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        rng = random.Random(1)
        for _ in range(5):
            result = run_defect_trial(net, th, v=0.0, rng=rng)
            assert not result.failed
            assert result.wrong_vectors == 0

    def test_huge_v_fails(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        prob = circuit_failure_probability(net, th, v=50.0, trials=30, seed=2)
        assert prob > 0.5

    def test_failure_monotone_in_v_roughly(self):
        net = random_network(1100)
        th = synthesize(net, SynthesisOptions(psi=3))
        low = circuit_failure_probability(net, th, v=0.1, trials=20, seed=3)
        high = circuit_failure_probability(net, th, v=4.0, trials=20, seed=3)
        assert high >= low

    def test_delta_on_improves_robustness(self):
        # The headline Section VI-C effect, on a small suite.
        nets = [random_network(s + 1200) for s in range(4)]
        rates = []
        for delta_on in (0, 3):
            circuits = []
            for net in nets:
                th = synthesize(
                    net, SynthesisOptions(psi=3, delta_on=delta_on)
                )
                circuits.append((net, th))
            rates.append(
                suite_failure_rate(circuits, v=0.9, trials=4, seed=11)
            )
        assert rates[1] <= rates[0]


class TestRngCompatibility:
    """The vectorized noise path pins distributions, not sample streams."""

    def test_accepts_numpy_generator(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        noise = perturb_weights(th, 1.0, np.random.default_rng(7))
        assert set(noise) == {g.name for g in th.gates()}
        for gate in th.gates():
            assert noise[gate.name].shape == (len(gate.inputs),)

    def test_accepts_int_seed_deterministically(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        a = perturb_weights(th, 1.0, 123)
        b = perturb_weights(th, 1.0, 123)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_python_random_stays_reproducible_and_fresh(self):
        # Same Python seed -> same noise; repeated draws from one RNG
        # differ (the bridge advances the underlying stream).
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        first = perturb_weights(th, 1.0, random.Random(9))
        again = perturb_weights(th, 1.0, random.Random(9))
        rng = random.Random(9)
        third = perturb_weights(th, 1.0, rng)
        fourth = perturb_weights(th, 1.0, rng)
        for name in first:
            np.testing.assert_array_equal(first[name], again[name])
            np.testing.assert_array_equal(first[name], third[name])
            assert not np.array_equal(third[name], fourth[name])

    def test_zero_v_gives_zero_noise(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        noise = perturb_weights(th, 0.0, random.Random(4))
        for values in noise.values():
            np.testing.assert_array_equal(values, np.zeros_like(values))

    def test_noise_distribution_is_uniform_centered(self):
        # ~N samples of v*U(-0.5, 0.5): mean ~0, all within +-v/2,
        # variance ~ v^2/12.  This is the contractual surface; the exact
        # stream may change with the implementation.
        net = random_network(1300)
        th = synthesize(net, SynthesisOptions(psi=3))
        v = 2.0
        gen = np.random.default_rng(0)
        samples = np.concatenate(
            [
                arr
                for _ in range(200)
                for arr in perturb_weights(th, v, gen).values()
            ]
        )
        assert samples.size >= 1000
        assert np.all(np.abs(samples) <= v / 2)
        assert abs(samples.mean()) < 0.05
        assert abs(samples.var() - v * v / 12.0) < 0.05


class TestSuiteMetric:
    def test_empty_suite(self):
        assert suite_failure_rate([], v=1.0) == 0.0

    def test_rate_is_percentage(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        rate = suite_failure_rate([(net, th)], v=50.0, trials=10, seed=5)
        assert rate in (0.0, 100.0)

    def test_trial_counts_vectors(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        result = run_defect_trial(net, th, v=0.0, rng=random.Random(0))
        assert result.total_vectors == 4  # exhaustive: 2 inputs, 1 output
