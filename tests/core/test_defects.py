"""Unit tests for the weight-variation Monte Carlo (Section VI-C)."""

import random

import numpy as np

from repro.boolean.function import BooleanFunction
from repro.core.defects import (
    circuit_failure_probability,
    perturb_weights,
    run_defect_trial,
    suite_failure_rate,
)
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.network.network import BooleanNetwork
from tests.conftest import random_network


def and_network():
    net = BooleanNetwork("andnet")
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", BooleanFunction.parse("a b"))
    net.add_output("f")
    return net


class TestPerturbation:
    def test_noise_bounded_by_half_v(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        rng = random.Random(0)
        for v in (0.5, 1.0, 2.0):
            noise = perturb_weights(th, v, rng)
            for gate_noise in noise.values():
                assert np.all(np.abs(gate_noise) <= v / 2 + 1e-12)

    def test_zero_v_never_fails(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        rng = random.Random(1)
        for _ in range(5):
            result = run_defect_trial(net, th, v=0.0, rng=rng)
            assert not result.failed
            assert result.wrong_vectors == 0

    def test_huge_v_fails(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        prob = circuit_failure_probability(net, th, v=50.0, trials=30, seed=2)
        assert prob > 0.5

    def test_failure_monotone_in_v_roughly(self):
        net = random_network(1100)
        th = synthesize(net, SynthesisOptions(psi=3))
        low = circuit_failure_probability(net, th, v=0.1, trials=20, seed=3)
        high = circuit_failure_probability(net, th, v=4.0, trials=20, seed=3)
        assert high >= low

    def test_delta_on_improves_robustness(self):
        # The headline Section VI-C effect, on a small suite.
        nets = [random_network(s + 1200) for s in range(4)]
        rates = []
        for delta_on in (0, 3):
            circuits = []
            for net in nets:
                th = synthesize(
                    net, SynthesisOptions(psi=3, delta_on=delta_on)
                )
                circuits.append((net, th))
            rates.append(
                suite_failure_rate(circuits, v=0.9, trials=4, seed=11)
            )
        assert rates[1] <= rates[0]


class TestSuiteMetric:
    def test_empty_suite(self):
        assert suite_failure_rate([], v=1.0) == 0.0

    def test_rate_is_percentage(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        rate = suite_failure_rate([(net, th)], v=50.0, trials=10, seed=5)
        assert rate in (0.0, 100.0)

    def test_trial_counts_vectors(self):
        net = and_network()
        th = synthesize(net, SynthesisOptions())
        result = run_defect_trial(net, th, v=0.0, rng=random.Random(0))
        assert result.total_vectors == 4  # exhaustive: 2 inputs, 1 output
