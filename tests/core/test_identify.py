"""Unit tests for ILP-based threshold identification (Fig. 6)."""

import random

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.core.identify import ThresholdChecker, is_threshold_function
from tests.conftest import random_cover


def gate_agrees(vector, cover):
    for p in range(1 << cover.nvars):
        total = sum(
            vector.weights[i] for i in range(cover.nvars) if (p >> i) & 1
        )
        if (total >= vector.threshold) != cover.evaluate(p):
            return False
    return True


class TestPaperExamples:
    def test_worked_ilp_example(self):
        # Section V-B: f = x1 x2' + x1 x3' -> <2, -1, -1; 1>.
        f = BooleanFunction.parse("x1 x2' + x1 x3'")
        vector = is_threshold_function(f)
        assert vector is not None
        assert vector.weights == (2, -1, -1)
        assert vector.threshold == 1

    def test_theorem2_example(self):
        # Section IV: x1 x2' + x3 -> <1, -1, 2; 1>.
        vector = is_threshold_function(BooleanFunction.parse("x1 x2' + x3"))
        assert vector is not None
        assert vector.weights == (1, -1, 2)
        assert vector.threshold == 1

    def test_classic_nonthreshold(self):
        # x1 x2 + x3 x4: the canonical non-threshold unate function.
        assert is_threshold_function(BooleanFunction.parse("x1 x2 + x3 x4")) is None

    def test_binate_rejected(self):
        assert is_threshold_function(BooleanFunction.parse("a b + a' c")) is None

    def test_xor_rejected(self):
        assert is_threshold_function(BooleanFunction.parse("a b' + a' b")) is None


class TestBasicGates:
    def test_and_gate(self):
        v = is_threshold_function(BooleanFunction.parse("a b c"))
        assert v.weights == (1, 1, 1) and v.threshold == 3

    def test_or_gate(self):
        v = is_threshold_function(BooleanFunction.parse("a + b + c"))
        assert v.weights == (1, 1, 1) and v.threshold == 1

    def test_buffer_and_inverter(self):
        assert is_threshold_function(BooleanFunction.parse("a")).threshold == 1
        inv = is_threshold_function(BooleanFunction.parse("a'"))
        assert inv.weights == (-1,) and inv.threshold == 0

    def test_majority(self):
        v = is_threshold_function(BooleanFunction.parse("a b + a c + b c"))
        assert v.weights == (1, 1, 1) and v.threshold == 2

    def test_nand_nor(self):
        nand = is_threshold_function(BooleanFunction.parse("a' + b'"))
        assert gate_agrees(nand, BooleanFunction.parse("a' + b'").cover)
        nor = is_threshold_function(BooleanFunction.parse("a' b'"))
        assert gate_agrees(nor, BooleanFunction.parse("a' b'").cover)

    def test_constants(self):
        one = ThresholdChecker().check(Cover.one(2))
        zero = ThresholdChecker().check(Cover.zero(2))
        assert one.evaluate([0, 0])
        assert not zero.evaluate([0, 0])


class TestDefectTolerances:
    def test_delta_on_widens_margin(self):
        f = BooleanFunction.parse("a b")
        tight = ThresholdChecker(delta_on=0).check_function(f)
        robust = ThresholdChecker(delta_on=2).check_function(f)
        # ON margin grows with delta_on.
        min_on_tight = sum(tight.weights) - tight.threshold
        min_on_robust = sum(robust.weights) - robust.threshold
        assert min_on_robust >= min_on_tight + 2

    def test_delta_increases_area(self):
        f = BooleanFunction.parse("a b + a c")
        small = ThresholdChecker(delta_on=0).check_function(f)
        big = ThresholdChecker(delta_on=3).check_function(f)
        assert big.area > small.area

    def test_solution_respects_deltas(self):
        rng = random.Random(77)
        for _ in range(60):
            cover = random_cover(rng, rng.randint(1, 4))
            for delta_on in (0, 1, 2):
                checker = ThresholdChecker(delta_on=delta_on, delta_off=1)
                vec = checker.check(cover)
                if vec is None:
                    continue
                for p in range(1 << cover.nvars):
                    total = sum(
                        vec.weights[i]
                        for i in range(cover.nvars)
                        if (p >> i) & 1
                    )
                    if cover.evaluate(p):
                        assert total >= vec.threshold + delta_on
                    else:
                        assert total <= vec.threshold - 1


class TestSoundness:
    def test_every_vector_implements_its_cover(self):
        rng = random.Random(81)
        for _ in range(250):
            cover = random_cover(rng, rng.randint(1, 5))
            vec = ThresholdChecker(backend="exact").check(cover)
            if vec is not None:
                assert gate_agrees(vec, cover), cover.to_strings()

    def test_completeness_small(self):
        # Exhaustive over all 3-variable functions: ILP-None must coincide
        # with brute-force non-existence of integer weights in a small box.
        from itertools import product

        checker = ThresholdChecker(backend="exact")
        for tt in product([0, 1], repeat=8):
            cover = Cover.from_truth_table(tt, 3)
            vec = checker.check(cover)
            brute = _brute_force_threshold(tt, 3, bound=3)
            assert (vec is not None) == brute, tt

    def test_backends_agree(self):
        rng = random.Random(83)
        for _ in range(100):
            cover = random_cover(rng, rng.randint(1, 4))
            exact = ThresholdChecker(backend="exact").check(cover)
            auto = ThresholdChecker(backend="auto").check(cover)
            assert (exact is None) == (auto is None), cover.to_strings()


def _brute_force_threshold(tt, nvars, bound):
    """Exhaustive search for integer weights in [-bound, bound]."""
    from itertools import product

    # delta_off=1 with integer weights equals the strict gate w.x >= T.
    for weights in product(range(-bound, bound + 1), repeat=nvars):
        sums = []
        for p in range(1 << nvars):
            sums.append(
                sum(weights[i] for i in range(nvars) if (p >> i) & 1)
            )
        on = [s for p, s in enumerate(sums) if tt[p]]
        off = [s for p, s in enumerate(sums) if not tt[p]]
        if not on or not off:
            return True  # constants are realizable
        if min(on) > max(off):
            return True
    return False


class TestCaching:
    def test_cache_hits_on_repeats(self):
        checker = ThresholdChecker()
        f = BooleanFunction.parse("a b + c")
        checker.check_function(f)
        before = checker.stats.cache_hits
        checker.check_function(f)
        assert checker.stats.cache_hits == before + 1

    def test_constraint_elimination_counted(self):
        # The Chow fast path would resolve this without formulating an ILP,
        # leaving both counters at zero; this test is about formulation.
        checker = ThresholdChecker(use_fastpath=False)
        checker.check_function(BooleanFunction.parse("a b + a c"))
        stats = checker.stats
        assert stats.constraints_emitted < stats.constraints_without_elimination

    def test_formulate_only(self):
        checker = ThresholdChecker()
        problem = checker.formulate_only(
            BooleanFunction.parse("a b + a c").cover
        )
        assert problem is not None
        assert problem.num_vars == 4  # w_a, w_b, w_c, T

    def test_formulate_only_binate_returns_none(self):
        checker = ThresholdChecker()
        assert checker.formulate_only(
            BooleanFunction.parse("a b + a' c").cover
        ) is None
