"""Unit and fuzz tests for the TELS synthesis flow (Fig. 3)."""

import pytest

from repro.boolean.function import BooleanFunction
from repro.core.synthesis import (
    SynthesisOptions,
    synthesize,
    synthesize_with_report,
)
from repro.core.verify import verify_threshold_network
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork
from repro.network.scripts import prepare_tels, script_algebraic
from tests.conftest import random_network


class TestOptions:
    def test_psi_must_be_at_least_two(self):
        with pytest.raises(SynthesisError):
            SynthesisOptions(psi=1)

    def test_negative_deltas_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisOptions(delta_on=-1)


class TestBasicSynthesis:
    def test_single_threshold_node(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a b + a c + b c"))
        net.add_output("f")
        th = synthesize(net, SynthesisOptions(psi=3))
        assert th.num_gates == 1
        gate = th.gate("f")
        assert gate.vector.weights == (1, 1, 1)
        assert gate.vector.threshold == 2
        assert verify_threshold_network(net, th)

    def test_nonthreshold_node_split(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a b + c d"))
        net.add_output("f")
        th = synthesize(net, SynthesisOptions(psi=4))
        assert th.num_gates >= 2  # must split; one LTG cannot do it
        assert verify_threshold_network(net, th)

    def test_binate_node_split(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", BooleanFunction.parse("a b' + a' b"))
        net.add_output("f")
        th = synthesize(net, SynthesisOptions(psi=3))
        assert verify_threshold_network(net, th)
        # One AND part is folded into the root via Theorem 2: 2 gates.
        assert th.num_gates == 2

    def test_binate_split_without_theorem2(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", BooleanFunction.parse("a b' + a' b"))
        net.add_output("f")
        th = synthesize(
            net, SynthesisOptions(psi=3, apply_theorem2=False)
        )
        assert verify_threshold_network(net, th)
        assert th.num_gates == 3  # two AND parts + plain OR root

    def test_constant_output(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("k", BooleanFunction.constant(True))
        net.add_output("k")
        th = synthesize(net, SynthesisOptions())
        assert th.evaluate({"a": 0})["k"] is True

    def test_po_aliasing_pi(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_output("a")
        th = synthesize(net, SynthesisOptions())
        assert th.evaluate({"a": 1})["a"] is True

    def test_inverter_output(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("f", BooleanFunction.parse("a'"))
        net.add_output("f")
        th = synthesize(net, SynthesisOptions())
        gate = th.gate("f")
        assert gate.vector.weights == (-1,)
        assert verify_threshold_network(net, th)

    def test_wide_and_cube_becomes_tree(self):
        net = BooleanNetwork()
        names = [f"x{i}" for i in range(7)]
        for n in names:
            net.add_input(n)
        net.add_node("f", BooleanFunction.parse(" ".join(names)))
        net.add_output("f")
        th = synthesize(net, SynthesisOptions(psi=3))
        assert th.max_fanin() <= 3
        assert verify_threshold_network(net, th)

    def test_wide_or_becomes_tree(self):
        net = BooleanNetwork()
        names = [f"x{i}" for i in range(7)]
        for n in names:
            net.add_input(n)
        net.add_node("f", BooleanFunction.parse(" + ".join(names)))
        net.add_output("f")
        th = synthesize(net, SynthesisOptions(psi=3))
        assert th.max_fanin() <= 3
        assert verify_threshold_network(net, th)


class TestFaninRestriction:
    @pytest.mark.parametrize("psi", [2, 3, 4, 6])
    def test_every_gate_respects_psi(self, psi):
        for seed in (1, 2, 3):
            net = random_network(seed + 700)
            th = synthesize(net, SynthesisOptions(psi=psi, seed=seed))
            assert th.max_fanin() <= psi
            assert verify_threshold_network(net, th), (seed, psi)


class TestSharingPreservation:
    def test_fanout_node_becomes_shared_gate(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("shared", BooleanFunction.parse("a b"))
        net.add_node("f", BooleanFunction.parse("shared + c"))
        net.add_node("g", BooleanFunction.parse("shared + d"))
        net.add_output("f")
        net.add_output("g")
        th = synthesize(net, SynthesisOptions(psi=3))
        assert th.has_gate("shared")
        readers = [
            g.name for g in th.gates() if "shared" in g.inputs
        ]
        assert sorted(readers) == ["f", "g"]
        assert verify_threshold_network(net, th)

    def test_sharing_disabled_duplicates_logic(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("shared", BooleanFunction.parse("a b"))
        net.add_node("f", BooleanFunction.parse("shared + c"))
        net.add_node("g", BooleanFunction.parse("shared + d"))
        net.add_output("f")
        net.add_output("g")
        th = synthesize(
            net, SynthesisOptions(psi=3, preserve_sharing=False)
        )
        assert not th.has_gate("shared")
        assert verify_threshold_network(net, th)


class TestTheorem2Combining:
    def test_applied_and_counted(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d", "e"):
            net.add_input(name)
        # a b + a c + d e: split -> larger (ab+ac) threshold, theorem 2
        # absorbs the d e part through one weighted input.
        net.add_node("f", BooleanFunction.parse("a b + a c + d e"))
        net.add_output("f")
        th, report = synthesize_with_report(net, SynthesisOptions(psi=4))
        assert report.theorem2_applications >= 1
        assert verify_threshold_network(net, th)

    def test_disabled_by_option(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d", "e"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a b + a c + d e"))
        net.add_output("f")
        th, report = synthesize_with_report(
            net, SynthesisOptions(psi=4, apply_theorem2=False)
        )
        assert report.theorem2_applications == 0
        assert verify_threshold_network(net, th)


class TestDeterminism:
    def test_same_seed_same_network(self):
        net = random_network(801)
        a = synthesize(net, SynthesisOptions(psi=3, seed=5))
        b = synthesize(net, SynthesisOptions(psi=3, seed=5))
        assert a.num_gates == b.num_gates
        assert a.area() == b.area()
        assert {g.name for g in a.gates()} == {g.name for g in b.gates()}


class TestEquivalenceFuzz:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_networks(self, seed):
        net = random_network(seed + 900)
        for pipeline in (lambda n: n, script_algebraic, prepare_tels):
            prepared = pipeline(net.copy())
            th = synthesize(prepared, SynthesisOptions(psi=3, seed=seed))
            assert verify_threshold_network(net, th), seed

    def test_delta_variants(self):
        net = random_network(950)
        for delta_on in (0, 1, 2):
            th = synthesize(
                net, SynthesisOptions(psi=4, delta_on=delta_on)
            )
            assert verify_threshold_network(net, th), delta_on

    def test_backend_variants(self):
        net = random_network(960)
        for backend in ("exact", "auto"):
            th = synthesize(net, SynthesisOptions(psi=3, backend=backend))
            assert verify_threshold_network(net, th), backend


class TestReport:
    def test_report_counts_consistent(self):
        net = random_network(970)
        th, report = synthesize_with_report(net, SynthesisOptions(psi=3))
        assert report.gates_emitted >= th.num_gates
        assert report.nodes_processed > 0
        assert report.checker is not None
        assert report.checker.stats.calls > 0
