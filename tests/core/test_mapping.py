"""Unit tests for the one-to-one mapping baseline."""

import pytest

from repro.boolean.function import BooleanFunction
from repro.core.mapping import one_to_one_map
from repro.core.verify import verify_threshold_network
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork
from repro.network.scripts import prepare_one_to_one
from tests.conftest import random_network


def simple_gate_network():
    net = BooleanNetwork("gates")
    for name in ("a", "b", "c"):
        net.add_input(name)
    net.add_node("n1", BooleanFunction.parse("a b"))
    net.add_node("n2", BooleanFunction.parse("n1 + c"))
    net.add_node("n3", BooleanFunction.parse("n2'"))
    net.add_output("n3")
    return net


class TestMapping:
    def test_one_gate_per_node(self):
        net = simple_gate_network()
        th = one_to_one_map(net)
        assert th.num_gates == net.num_nodes
        assert verify_threshold_network(net, th)

    def test_gate_names_preserved(self):
        th = one_to_one_map(simple_gate_network())
        for name in ("n1", "n2", "n3"):
            assert th.has_gate(name)

    def test_rejects_nonthreshold_node(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a b + c d"))
        net.add_output("f")
        with pytest.raises(SynthesisError) as err:
            one_to_one_map(net)
        assert "f" in str(err.value)

    def test_constant_node(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("k", BooleanFunction.constant(False))
        net.add_output("k")
        th = one_to_one_map(net)
        assert th.evaluate({"a": 1})["k"] is False

    def test_levels_match_boolean_network(self):
        net = simple_gate_network()
        th = one_to_one_map(net)
        assert th.depth() == net.depth()

    def test_deltas_propagated(self):
        th = one_to_one_map(simple_gate_network(), delta_on=2)
        for gate in th.gates():
            assert gate.delta_on == 2

    def test_prepared_networks_always_map(self):
        for seed in range(8):
            net = random_network(seed + 1000)
            prepared = prepare_one_to_one(net, max_fanin=3)
            th = one_to_one_map(prepared)
            assert th.num_gates == prepared.num_nodes
            assert verify_threshold_network(net, th), seed

    def test_area_minimal_for_simple_gates(self):
        # AND2 area: w=(1,1), T=2 -> 4; OR2: T=1 -> 3; INV: 1.
        net = simple_gate_network()
        th = one_to_one_map(net)
        assert th.gate("n1").area == 4
        assert th.gate("n2").area == 3
        assert th.gate("n3").area == 1
