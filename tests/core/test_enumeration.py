"""Tests for the Section VI-B enumeration (Muroga's counts)."""

import pytest

from repro.experiments.enumeration import (
    MEASURED_COUNTS,
    PAPER_COUNTS,
    count_positive_unate_threshold,
    monotone_functions,
)


class TestDedekindRecursion:
    def test_dedekind_numbers(self):
        assert [len(monotone_functions(n)) for n in range(5)] == [
            2,
            3,
            6,
            20,
            168,
        ]

    def test_all_functions_are_monotone(self):
        for bits in monotone_functions(3):
            for var in range(3):
                step = 1 << var
                for p in range(8):
                    if not (p >> var) & 1:
                        assert bits[p] <= bits[p + step]


class TestCounts:
    @pytest.mark.parametrize("nvars", [1, 2, 3, 4])
    def test_small_arities_match_paper(self, nvars):
        result = count_positive_unate_threshold(nvars)
        assert (
            result.positive_unate_classes,
            result.threshold_classes,
        ) == PAPER_COUNTS[nvars]

    def test_all_three_variable_functions_threshold(self):
        # "All positive unate functions of three or fewer variables are
        # threshold functions" (Section VI-B).
        result = count_positive_unate_threshold(3)
        assert result.fraction_threshold == 1.0

    def test_four_variables_17_of_20(self):
        result = count_positive_unate_threshold(4)
        assert result.positive_unate_classes == 20
        assert result.threshold_classes == 17

    @pytest.mark.slow
    def test_five_variables_92_threshold(self):
        # The threshold count matches the paper exactly; the class count is
        # 180 (the paper's 168 matches the Dedekind number D(4) and appears
        # to be a convention slip — see EXPERIMENTS.md).
        result = count_positive_unate_threshold(5)
        assert result.threshold_classes == 92
        assert result.positive_unate_classes == MEASURED_COUNTS[5][0]

    def test_include_constants_and_partial_support(self):
        result = count_positive_unate_threshold(
            2, full_support=False, include_constants=True
        )
        # All 6 monotone 2-var functions (D(2)) collapse to 5 permutation
        # classes: 0, 1, x, xy, x+y.
        assert result.positive_unate_classes == 5
        assert result.threshold_classes == 5
