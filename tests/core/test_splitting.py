"""Unit tests for unate and binate node splitting (Figs. 7, 8)."""

import random

import pytest

from repro.boolean.function import BooleanFunction
from repro.boolean.unate import syntactic_unateness
from repro.core.splitting import (
    split_binate,
    split_k_way,
    split_unate,
)
from repro.errors import SynthesisError
from tests.conftest import random_cover


def or_of(parts):
    result = None
    for p in parts:
        result = p if result is None else _or2(result, p)
    return result


def _or2(a, b):
    union = list(a.variables)
    for v in b.variables:
        if v not in union:
            union.append(v)
    from repro.boolean.cover import Cover

    ra, rb = a.rebased(union), b.rebased(union)
    return BooleanFunction(
        Cover(ra.cover.cubes + rb.cover.cubes, len(union)).scc(), union
    )


class TestUnateRules:
    def test_rule1_all_singleton_variables(self):
        # Paper: x1x2 + x3x4 + x5x6 splits into halves by cubes.
        f = BooleanFunction.parse("x1 x2 + x3 x4 + x5 x6")
        rng = random.Random(0)
        split = split_unate(f, rng)
        assert split.mode == "or"
        a, b = split.parts
        assert a.num_cubes + b.num_cubes == 3
        assert or_of([a, b]).equivalent(f)

    def test_rule2_common_variable_factored(self):
        # Paper: x1x2 + x1x3x4 + x1x5x6 -> n1 = x1, n2 = x2 + x3x4 + x5x6.
        f = BooleanFunction.parse("x1 x2 + x1 x3 x4 + x1 x5 x6")
        split = split_unate(f, random.Random(0))
        assert split.mode == "and"
        cube_part = next(p for p in split.parts if p.num_cubes == 1)
        quot_part = next(p for p in split.parts if p.num_cubes != 1)
        assert cube_part.to_expression() == "x1"
        assert quot_part.equivalent(
            BooleanFunction.parse("x2 + x3 x4 + x5 x6")
        )

    def test_rule3_most_frequent_variable(self):
        # Paper: x1x2 + x1x3 + x4x5 splits on x1.
        f = BooleanFunction.parse("x1 x2 + x1 x3 + x4 x5")
        split = split_unate(f, random.Random(0))
        assert split.mode == "or"
        larger = split.parts[split.larger_index]
        assert larger.equivalent(BooleanFunction.parse("x1 x2 + x1 x3"))

    def test_rule4_random_tiebreak_deterministic_per_seed(self):
        f = BooleanFunction.parse("a b + a c + d e + d f")
        s1 = split_unate(f, random.Random(7))
        s2 = split_unate(f, random.Random(7))
        assert s1 == s2

    def test_single_cube_rejected(self):
        with pytest.raises(SynthesisError):
            split_unate(BooleanFunction.parse("a b"), random.Random(0))

    def test_parts_recombine_fuzz(self):
        rng = random.Random(17)
        for _ in range(150):
            cover = random_cover(rng, rng.randint(2, 5)).scc()
            if cover.num_cubes < 2:
                continue
            if not syntactic_unateness(cover).is_unate:
                continue  # split_unate's contract is unate input
            f = BooleanFunction(
                cover, tuple(f"v{i}" for i in range(cover.nvars))
            )
            split = split_unate(f, rng)
            if split.mode == "or":
                assert or_of(list(split.parts)).equivalent(f)
            else:
                # AND recombination check by evaluation.
                union = list(f.variables)
                fa = split.parts[0].rebased(union)
                fb = split.parts[1].rebased(union)
                for p in range(1 << len(union)):
                    assert (
                        fa.cover.evaluate(p) and fb.cover.evaluate(p)
                    ) == f.cover.evaluate(p)


class TestKWay:
    def test_splits_into_k_parts(self):
        f = BooleanFunction.parse("a b + c d + e g + h i")
        parts = split_k_way(f, 3)
        assert len(parts) == 3
        assert or_of(parts).equivalent(f)

    def test_k_capped_by_cube_count(self):
        f = BooleanFunction.parse("a + b")
        assert len(split_k_way(f, 5)) == 2

    def test_invalid_k(self):
        with pytest.raises(SynthesisError):
            split_k_way(BooleanFunction.parse("a"), 0)


class TestBinate:
    def test_paper_example(self):
        # n = x1'x4 + x2x3 + x2'x4x5 with psi=5 -> three parts.
        f = BooleanFunction.parse("x1' x4 + x2 x3 + x2' x4 x5")
        parts = split_binate(f, psi=5, rng=random.Random(0))
        assert len(parts) == 3
        assert or_of(parts).equivalent(f)
        # Each resulting part here is unate.
        for p in parts:
            assert syntactic_unateness(p.cover).is_unate

    def test_split_respects_psi(self):
        f = BooleanFunction.parse(
            "a b' + a' b + c d' + c' d + e g' + e' g"
        )
        parts = split_binate(f, psi=3, rng=random.Random(0))
        assert len(parts) == 3
        assert or_of(parts).equivalent(f)

    def test_recombination_fuzz(self):
        rng = random.Random(19)
        for _ in range(150):
            cover = random_cover(rng, rng.randint(2, 5)).scc()
            if cover.num_cubes < 2:
                continue
            if syntactic_unateness(cover).is_unate:
                continue
            f = BooleanFunction(
                cover, tuple(f"v{i}" for i in range(cover.nvars))
            )
            for psi in (2, 3, 4):
                parts = split_binate(f, psi=psi, rng=rng)
                assert or_of(parts).equivalent(f), (cover.to_strings(), psi)

    def test_negative_cube_partition(self):
        # Cubes with the negative literal go to one part, rest to the other.
        f = BooleanFunction.parse("x1' x4 + x2 x3 + x1 x5")
        parts = split_binate(f, psi=2, rng=random.Random(0))
        assert len(parts) == 2
        neg_part = next(
            p for p in parts if p.equivalent(BooleanFunction.parse("x1' x4"))
        )
        assert neg_part is not None
