"""Unit tests for node collapsing (Fig. 4)."""

from repro.boolean.function import BooleanFunction
from repro.core.collapse import collapse_node
from repro.network.network import BooleanNetwork


def paper_example_network():
    """Fig. 5 of the paper: f = n1 + n2, n1 = x1 n3, n2 = n3 x4."""
    net = BooleanNetwork("fig5")
    for name in ("x1", "x2", "x3", "x4"):
        net.add_input(name)
    net.add_node("n3", BooleanFunction.parse("x2 + x3"))
    net.add_node("n1", BooleanFunction.parse("x1 n3"))
    net.add_node("n2", BooleanFunction.parse("n3 x4"))
    net.add_node("f", BooleanFunction.parse("n1 + n2"))
    net.add_output("f")
    return net


class TestPaperExample:
    def test_collapse_stops_at_fanout_node(self):
        net = paper_example_network()
        collapsed = collapse_node(net, "f", psi=4, preserved={"n3"})
        # Paper result: f = x1 n3 + n3 x4.
        assert set(collapsed.variables) == {"x1", "x4", "n3"}
        assert collapsed.equivalent(BooleanFunction.parse("x1 n3 + n3 x4"))

    def test_collapse_through_everything_without_sharing(self):
        net = paper_example_network()
        collapsed = collapse_node(net, "f", psi=4, preserved=set())
        assert set(collapsed.variables) <= {"x1", "x2", "x3", "x4"}
        want = BooleanFunction.parse("x1 x2 + x1 x3 + x2 x4 + x3 x4")
        assert collapsed.equivalent(want)


class TestFaninRestriction:
    def test_substitution_undone_when_psi_exceeded(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("wide", BooleanFunction.parse("a b + c"))
        net.add_node("f", BooleanFunction.parse("wide + d"))
        net.add_output("f")
        collapsed = collapse_node(net, "f", psi=3, preserved=set())
        # Substituting `wide` gives 4 variables > psi: must be undone.
        assert "wide" in collapsed.variables
        assert collapsed.nvars <= 3

    def test_substitution_allowed_at_exactly_psi(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_node("m", BooleanFunction.parse("b c"))
        net.add_node("f", BooleanFunction.parse("m + a"))
        net.add_output("f")
        collapsed = collapse_node(net, "f", psi=3, preserved=set())
        assert set(collapsed.variables) == {"a", "b", "c"}

    def test_multi_level_collapse(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_node("p", BooleanFunction.parse("a b"))
        net.add_node("q", BooleanFunction.parse("p + c"))
        net.add_node("f", BooleanFunction.parse("q"))
        net.add_output("f")
        collapsed = collapse_node(net, "f", psi=3, preserved=set())
        assert collapsed.equivalent(BooleanFunction.parse("a b + c"))

    def test_wide_node_not_collapsed_at_all(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d", "e"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a b + c d + e"))
        net.add_output("f")
        collapsed = collapse_node(net, "f", psi=3, preserved=set())
        assert collapsed.equivalent(net.function("f"))


class TestGuards:
    def test_cube_blowup_guard(self):
        net = BooleanNetwork()
        for i in range(6):
            net.add_input(f"x{i}")
        net.add_node(
            "m", BooleanFunction.parse("x0 x1 + x2 x3 + x4 x5")
        )
        net.add_node("f", BooleanFunction.parse("m'"))
        net.add_output("f")
        # With max_cubes=1 the complement blow-up is refused.
        collapsed = collapse_node(
            net, "f", psi=8, preserved=set(), max_cubes=1
        )
        assert "m" in collapsed.variables

    def test_preserved_node_never_substituted(self):
        net = paper_example_network()
        collapsed = collapse_node(
            net, "f", psi=10, preserved={"n1", "n2", "n3"}
        )
        assert set(collapsed.variables) == {"n1", "n2"}

    def test_primary_inputs_never_substituted(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("f", BooleanFunction.parse("a'"))
        net.add_output("f")
        collapsed = collapse_node(net, "f", psi=4, preserved=set())
        assert collapsed.variables == ("a",)
