"""Tests for checker formulation details and the max-weight / store paths."""

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.core.identify import ThresholdChecker, is_threshold_function
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.verify import verify_threshold_network
from repro.engine.store import ResultStore
from repro.ilp.model import Sense
from repro.network.network import BooleanNetwork

MAJORITY = "a b + a c + b c"
NEEDS_WEIGHT_2 = "x1 x2' + x1 x3'"


class TestFormulateOnly:
    def test_majority_structure(self):
        problem = ThresholdChecker().formulate_only(
            BooleanFunction.parse(MAJORITY).cover
        )
        assert problem is not None
        # Three weights plus the threshold, all-ones objective (Eq. 14).
        assert problem.num_vars == 4
        assert all(c == 1 for c in problem.objective)
        assert problem.names[-1] == "T"
        on = [c for c in problem.constraints if c.sense is Sense.GE]
        off = [c for c in problem.constraints if c.sense is Sense.LE]
        # Majority: 3 prime ON cubes; its complement (minority) has 3.
        assert len(on) == 3
        assert len(off) == 3
        for con in on:
            assert con.coefficients[-1] == -1
            assert con.rhs == 0
        for con in off:
            assert con.coefficients[-1] == -1
            assert con.rhs == -1

    def test_tolerances_reach_rhs(self):
        checker = ThresholdChecker(delta_on=2, delta_off=3)
        problem = checker.formulate_only(
            BooleanFunction.parse(MAJORITY).cover
        )
        ge_rhs = {c.rhs for c in problem.constraints if c.sense is Sense.GE}
        le_rhs = {c.rhs for c in problem.constraints if c.sense is Sense.LE}
        assert ge_rhs == {2}
        assert le_rhs == {-3}

    def test_max_weight_adds_box_and_t_bound(self):
        base = ThresholdChecker().formulate_only(
            BooleanFunction.parse(MAJORITY).cover
        )
        bounded = ThresholdChecker(max_weight=2).formulate_only(
            BooleanFunction.parse(MAJORITY).cover
        )
        # One singleton row per weight, plus the implied T bound.
        assert len(bounded.constraints) == len(base.constraints) + 4
        singles = [
            c
            for c in bounded.constraints
            if c.sense is Sense.LE
            and sum(1 for x in c.coefficients if x != 0) == 1
        ]
        box = [c for c in singles if c.coefficients[-1] == 0]
        t_bound = [c for c in singles if c.coefficients[-1] == 1]
        assert len(box) == 3
        assert all(c.rhs == 2 for c in box)
        # Smallest ON cube has 2 literals: T <= 2 * max_weight - delta_on.
        assert len(t_bound) == 1
        assert t_bound[0].rhs == 4

    def test_binate_and_constant_covers_give_none(self):
        checker = ThresholdChecker()
        xor = Cover.from_strings(["10", "01"])
        assert checker.formulate_only(xor) is None
        assert checker.formulate_only(Cover.one(2)) is None
        assert checker.formulate_only(Cover.zero(2)) is None


class TestMaxWeightPath:
    def test_bound_flips_verdict(self):
        f = BooleanFunction.parse(NEEDS_WEIGHT_2)
        assert is_threshold_function(f) is not None
        assert is_threshold_function(f, max_weight=1) is None

    def test_bounded_rejection_is_split_in_synthesis(self):
        # x1 x2' + x1 x3' is threshold unconstrained (one gate) but needs
        # w1 = 2: under max_weight=1 the node must be split into several
        # unit-weight gates that still implement the function.
        net = BooleanNetwork("bounded")
        fanins = [net.add_input(v) for v in ("a", "b", "c")]
        net.add_node(
            "f", BooleanFunction.from_sop(["10-", "1-0"], fanins)
        )
        net.add_output("f")
        net.check()

        free = synthesize(net, SynthesisOptions(psi=3))
        assert free.num_gates == 1

        bounded = synthesize(net, SynthesisOptions(psi=3, max_weight=1))
        assert bounded.num_gates > 1
        for gate in bounded.gates():
            assert all(abs(w) <= 1 for w in gate.weights)
        assert verify_threshold_network(net, bounded)


class TestStoreInjection:
    def test_one_shot_calls_share_a_store(self):
        store = ResultStore()
        f = BooleanFunction.parse(MAJORITY)
        first = is_threshold_function(f, store=store)
        assert first is not None
        assert store.num_vectors == 1
        assert is_threshold_function(f, store=store) == first
        assert store.num_vectors == 1

    def test_injected_store_serves_cache_hits(self):
        store = ResultStore()
        f = BooleanFunction.parse(MAJORITY)
        is_threshold_function(f, store=store)
        checker = ThresholdChecker(store=store)
        assert checker.check_function(f) is not None
        assert checker.stats.cache_hits == 1
        assert checker.stats.fastpath_attempts == 0
        assert checker.stats.ilp_solved == 0

    def test_max_weight_keys_do_not_collide(self):
        store = ResultStore()
        f = BooleanFunction.parse(NEEDS_WEIGHT_2)
        assert is_threshold_function(f, store=store) is not None
        assert is_threshold_function(f, max_weight=1, store=store) is None
        assert is_threshold_function(f, store=store) is not None
