"""Tests for the structural analysis module."""

from repro.core.analysis import analyze_network, format_analysis
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
    make_and_vector,
)
from tests.conftest import random_network


def tiny_net():
    net = ThresholdNetwork("t")
    net.add_input("a")
    net.add_input("b")
    net.add_gate(
        ThresholdGate("m", ("a", "b"), WeightThresholdVector((2, -1), 1))
    )
    net.add_gate(ThresholdGate("f", ("m", "a"), make_and_vector(2)))
    net.add_output("f")
    return net


class TestAnalysis:
    def test_basic_counts(self):
        a = analyze_network(tiny_net())
        assert a.gates == 2
        assert a.levels == 2
        assert a.max_fanin == 2
        assert a.fanin_histogram == {2: 2}

    def test_weight_histogram(self):
        a = analyze_network(tiny_net())
        assert a.weight_histogram == {-1: 1, 1: 2, 2: 1}
        assert a.max_abs_weight == 2
        assert a.negative_weight_gates == 1

    def test_margins(self):
        a = analyze_network(tiny_net())
        assert a.min_on_margin is not None and a.min_on_margin >= 0
        assert a.min_off_margin is not None and a.min_off_margin >= 1

    def test_critical_path_ends_at_deepest_output(self):
        a = analyze_network(tiny_net())
        assert a.critical_path[-1] == "f"
        assert a.critical_path[0] == "m"

    def test_mean_fanin(self):
        assert analyze_network(tiny_net()).mean_fanin == 2.0

    def test_format_contains_sections(self):
        text = format_analysis(analyze_network(tiny_net()))
        for token in ("gates:", "fanin histogram", "critical path"):
            assert token in text

    def test_on_synthesized_network(self):
        net = random_network(1800)
        th = synthesize(net, SynthesisOptions(psi=3))
        a = analyze_network(th)
        assert a.gates == th.num_gates
        assert a.max_fanin <= 3
        assert sum(a.fanin_histogram.values()) == a.gates
