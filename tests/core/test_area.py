"""Unit tests for the Table-I metrics (gates / levels / area)."""

from repro.boolean.function import BooleanFunction
from repro.core.area import NetworkStats, boolean_stats, network_stats, reduction
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.network.network import BooleanNetwork


def tiny_threshold_net():
    net = ThresholdNetwork("t")
    net.add_input("a")
    net.add_input("b")
    net.add_gate(
        ThresholdGate("m", ("a", "b"), WeightThresholdVector((2, -1), 1))
    )
    net.add_gate(
        ThresholdGate("f", ("m", "a"), WeightThresholdVector((1, 1), 1))
    )
    net.add_output("f")
    return net


class TestThresholdStats:
    def test_counts(self):
        stats = network_stats(tiny_threshold_net())
        assert stats.gates == 2
        assert stats.levels == 2
        # Eq. 14: (|2|+|-1|+|1|) + (|1|+|1|+|1|) = 4 + 3.
        assert stats.area == 7

    def test_str(self):
        assert "gates=2" in str(network_stats(tiny_threshold_net()))


class TestBooleanStats:
    def test_counts(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", BooleanFunction.parse("a b + a'"))
        net.add_output("f")
        stats = boolean_stats(net)
        assert stats == NetworkStats(gates=1, levels=1, area=3)


class TestReduction:
    def test_basic(self):
        assert reduction(100, 48) == 52.0
        assert reduction(0, 10) == 0.0
        assert reduction(10, 12) == -20.0
