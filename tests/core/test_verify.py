"""Unit tests for functional validation of threshold networks."""

from repro.boolean.function import BooleanFunction
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.core.verify import first_mismatch, verify_threshold_network
from repro.network.network import BooleanNetwork
from tests.conftest import random_network


def source_and():
    net = BooleanNetwork()
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", BooleanFunction.parse("a b"))
    net.add_output("f")
    return net


def broken_or():
    th = ThresholdNetwork()
    th.add_input("a")
    th.add_input("b")
    th.add_gate(
        ThresholdGate("f", ("a", "b"), WeightThresholdVector((1, 1), 1))
    )
    th.add_output("f")
    return th


class TestVerify:
    def test_accepts_correct_synthesis(self):
        net = source_and()
        th = synthesize(net, SynthesisOptions())
        assert verify_threshold_network(net, th)

    def test_rejects_wrong_gate(self):
        assert not verify_threshold_network(source_and(), broken_or())

    def test_rejects_interface_mismatch(self):
        net = source_and()
        other = ThresholdNetwork()
        other.add_input("a")
        other.add_gate(
            ThresholdGate("f", ("a",), WeightThresholdVector((1,), 1))
        )
        other.add_output("f")
        assert not verify_threshold_network(net, other)

    def test_randomized_path_for_wide_networks(self):
        net = random_network(1300, npi=18, nnodes=10)
        th = synthesize(net, SynthesisOptions(psi=3))
        assert verify_threshold_network(net, th, vectors=256)

    def test_first_mismatch_found(self):
        mismatch = first_mismatch(source_and(), broken_or())
        assert mismatch is not None
        want = source_and().evaluate(mismatch)
        got = broken_or().evaluate(mismatch)
        assert want != got

    def test_first_mismatch_none_when_equal(self):
        net = source_and()
        th = synthesize(net, SynthesisOptions())
        assert first_mismatch(net, th) is None
