"""Tests for post-synthesis peephole optimization."""

import pytest

from repro.core.optimize import peephole_optimize
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
    make_and_vector,
    make_or_vector,
)
from repro.core.verify import verify_threshold_network
from tests.conftest import random_network


def _equiv(a: ThresholdNetwork, b: ThresholdNetwork) -> bool:
    assert a.inputs == b.inputs and a.outputs == b.outputs
    n = len(a.inputs)
    for p in range(1 << n):
        assignment = {name: (p >> i) & 1 for i, name in enumerate(a.inputs)}
        if a.evaluate(assignment) != b.evaluate(assignment):
            return False
    return True


def _copy(net: ThresholdNetwork) -> ThresholdNetwork:
    clone = ThresholdNetwork(net.name)
    for name in net.inputs:
        clone.add_input(name)
    for gate in net.gates():
        clone.add_gate(gate)
    for out in net.outputs:
        clone.add_output(out)
    return clone


class TestBufferFolding:
    def test_internal_buffer_removed(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate(ThresholdGate("buf", ("a",), WeightThresholdVector((1,), 1)))
        net.add_gate(ThresholdGate("f", ("buf", "b"), make_and_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        removed = peephole_optimize(net)
        assert removed >= 1
        assert not net.has_gate("buf")
        assert _equiv(reference, net)

    def test_po_buffer_kept(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(ThresholdGate("f", ("a",), WeightThresholdVector((1,), 1)))
        net.add_output("f")
        peephole_optimize(net)
        assert net.has_gate("f")

    def test_buffer_into_duplicate_input_skipped(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(ThresholdGate("buf", ("a",), WeightThresholdVector((1,), 1)))
        net.add_gate(
            ThresholdGate("f", ("buf", "a"), WeightThresholdVector((1, 1), 2))
        )
        net.add_output("f")
        reference = _copy(net)
        peephole_optimize(net)
        assert _equiv(reference, net)


class TestConstantPropagation:
    def test_always_true_gate_folds(self):
        net = ThresholdNetwork()
        net.add_input("a")
        # k fires for every assignment (threshold 0).
        net.add_gate(ThresholdGate("k", ("a",), WeightThresholdVector((1,), 0)))
        net.add_gate(ThresholdGate("f", ("k", "a"), make_and_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        peephole_optimize(net)
        assert _equiv(reference, net)
        assert not net.has_gate("k")

    def test_never_true_gate_folds(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(ThresholdGate("z", ("a",), WeightThresholdVector((1,), 5)))
        net.add_gate(ThresholdGate("f", ("z", "a"), make_or_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        peephole_optimize(net)
        assert _equiv(reference, net)
        assert not net.has_gate("z")


class TestTheorem2Absorption:
    def test_or_absorbs_single_fanout_child(self):
        net = ThresholdNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_gate(ThresholdGate("m", ("a", "b"), make_and_vector(2)))
        net.add_gate(ThresholdGate("f", ("m", "c"), make_or_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        removed = peephole_optimize(net, psi=3)
        assert removed >= 1
        assert not net.has_gate("m")
        gate = net.gate("f")
        assert set(gate.inputs) == {"a", "b", "c"}
        assert _equiv(reference, net)

    def test_respects_psi(self):
        net = ThresholdNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_gate(ThresholdGate("m", ("a", "b", "c"), make_and_vector(3)))
        net.add_gate(ThresholdGate("f", ("m", "d"), make_or_vector(2)))
        net.add_output("f")
        peephole_optimize(net, psi=3)  # merged fanin would be 4 > 3
        assert net.has_gate("m")

    def test_disabled_without_psi(self):
        net = ThresholdNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_gate(ThresholdGate("m", ("a", "b"), make_and_vector(2)))
        net.add_gate(ThresholdGate("f", ("m", "c"), make_or_vector(2)))
        net.add_output("f")
        peephole_optimize(net)  # psi=0: absorption off
        assert net.has_gate("m")


class TestIdempotence:
    @pytest.mark.parametrize("delta_on", [0, 1])
    def test_second_pass_is_a_no_op_on_paper_examples(self, delta_on):
        from repro.benchgen.paper_examples import (
            fig5_network,
            motivational_network,
        )

        for source in (motivational_network(), fig5_network()):
            th = synthesize(
                source, SynthesisOptions(psi=3, delta_on=delta_on)
            )
            peephole_optimize(th, psi=3, delta_on=delta_on)
            snapshot = {g.name: g for g in th.gates()}
            assert peephole_optimize(th, psi=3, delta_on=delta_on) == 0
            assert {g.name: g for g in th.gates()} == snapshot

    def test_idempotent_on_random_synthesized_networks(self):
        for seed in range(4):
            source = random_network(seed + 1500)
            th = synthesize(source, SynthesisOptions(psi=4, seed=seed))
            peephole_optimize(th, psi=4)
            assert peephole_optimize(th, psi=4) == 0


class TestDefectTolerancePreservation:
    @pytest.mark.parametrize("delta_on,delta_off", [(0, 1), (1, 1), (1, 2)])
    def test_margins_still_meet_gate_labels(self, delta_on, delta_off):
        """Peephole rewrites must not shrink any gate below the tolerances
        it is labeled with (Eq. 1) — Theorem-2 absorption and constant
        folding both rebuild vectors, so this is worth checking per gate."""
        from repro.benchgen.paper_examples import (
            fig5_network,
            motivational_network,
        )

        for source in (motivational_network(), fig5_network()):
            th = synthesize(
                source,
                SynthesisOptions(
                    psi=3, delta_on=delta_on, delta_off=delta_off
                ),
            )
            peephole_optimize(th, psi=3, delta_on=delta_on)
            assert verify_threshold_network(source, th)
            for gate in th.gates():
                on_margin, off_margin = gate.margins()
                if on_margin is not None:
                    assert on_margin >= gate.delta_on, gate.name
                if off_margin is not None:
                    assert off_margin >= gate.delta_off, gate.name


class TestOnSynthesizedNetworks:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_preserved(self, seed):
        source = random_network(seed + 1400)
        th = synthesize(source, SynthesisOptions(psi=3, seed=seed))
        peephole_optimize(th, psi=3)
        assert th.max_fanin() <= 3
        assert verify_threshold_network(source, th), seed

    def test_never_increases_gate_count(self):
        source = random_network(1450)
        th = synthesize(source, SynthesisOptions(psi=4))
        before = th.num_gates
        peephole_optimize(th, psi=4)
        assert th.num_gates <= before
