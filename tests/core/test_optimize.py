"""Tests for post-synthesis peephole optimization."""

import pytest

from repro.core.optimize import peephole_optimize
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
    make_and_vector,
    make_or_vector,
)
from repro.core.verify import verify_threshold_network
from tests.conftest import random_network


def _equiv(a: ThresholdNetwork, b: ThresholdNetwork) -> bool:
    assert a.inputs == b.inputs and a.outputs == b.outputs
    n = len(a.inputs)
    for p in range(1 << n):
        assignment = {name: (p >> i) & 1 for i, name in enumerate(a.inputs)}
        if a.evaluate(assignment) != b.evaluate(assignment):
            return False
    return True


def _copy(net: ThresholdNetwork) -> ThresholdNetwork:
    clone = ThresholdNetwork(net.name)
    for name in net.inputs:
        clone.add_input(name)
    for gate in net.gates():
        clone.add_gate(gate)
    for out in net.outputs:
        clone.add_output(out)
    return clone


class TestBufferFolding:
    def test_internal_buffer_removed(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate(ThresholdGate("buf", ("a",), WeightThresholdVector((1,), 1)))
        net.add_gate(ThresholdGate("f", ("buf", "b"), make_and_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        removed = peephole_optimize(net)
        assert removed >= 1
        assert not net.has_gate("buf")
        assert _equiv(reference, net)

    def test_po_buffer_kept(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(ThresholdGate("f", ("a",), WeightThresholdVector((1,), 1)))
        net.add_output("f")
        peephole_optimize(net)
        assert net.has_gate("f")

    def test_buffer_into_duplicate_input_skipped(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(ThresholdGate("buf", ("a",), WeightThresholdVector((1,), 1)))
        net.add_gate(
            ThresholdGate("f", ("buf", "a"), WeightThresholdVector((1, 1), 2))
        )
        net.add_output("f")
        reference = _copy(net)
        peephole_optimize(net)
        assert _equiv(reference, net)


class TestConstantPropagation:
    def test_always_true_gate_folds(self):
        net = ThresholdNetwork()
        net.add_input("a")
        # k fires for every assignment (threshold 0).
        net.add_gate(ThresholdGate("k", ("a",), WeightThresholdVector((1,), 0)))
        net.add_gate(ThresholdGate("f", ("k", "a"), make_and_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        peephole_optimize(net)
        assert _equiv(reference, net)
        assert not net.has_gate("k")

    def test_never_true_gate_folds(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(ThresholdGate("z", ("a",), WeightThresholdVector((1,), 5)))
        net.add_gate(ThresholdGate("f", ("z", "a"), make_or_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        peephole_optimize(net)
        assert _equiv(reference, net)
        assert not net.has_gate("z")


class TestTheorem2Absorption:
    def test_or_absorbs_single_fanout_child(self):
        net = ThresholdNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_gate(ThresholdGate("m", ("a", "b"), make_and_vector(2)))
        net.add_gate(ThresholdGate("f", ("m", "c"), make_or_vector(2)))
        net.add_output("f")
        reference = _copy(net)
        removed = peephole_optimize(net, psi=3)
        assert removed >= 1
        assert not net.has_gate("m")
        gate = net.gate("f")
        assert set(gate.inputs) == {"a", "b", "c"}
        assert _equiv(reference, net)

    def test_respects_psi(self):
        net = ThresholdNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_gate(ThresholdGate("m", ("a", "b", "c"), make_and_vector(3)))
        net.add_gate(ThresholdGate("f", ("m", "d"), make_or_vector(2)))
        net.add_output("f")
        peephole_optimize(net, psi=3)  # merged fanin would be 4 > 3
        assert net.has_gate("m")

    def test_disabled_without_psi(self):
        net = ThresholdNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_gate(ThresholdGate("m", ("a", "b"), make_and_vector(2)))
        net.add_gate(ThresholdGate("f", ("m", "c"), make_or_vector(2)))
        net.add_output("f")
        peephole_optimize(net)  # psi=0: absorption off
        assert net.has_gate("m")


class TestOnSynthesizedNetworks:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_preserved(self, seed):
        source = random_network(seed + 1400)
        th = synthesize(source, SynthesisOptions(psi=3, seed=seed))
        peephole_optimize(th, psi=3)
        assert th.max_fanin() <= 3
        assert verify_threshold_network(source, th), seed

    def test_never_increases_gate_count(self):
        source = random_network(1450)
        th = synthesize(source, SynthesisOptions(psi=4))
        before = th.num_gates
        peephole_optimize(th, psi=4)
        assert th.num_gates <= before
