"""Tests for the alternative splitting strategies (future-work extensions)."""

import random

import pytest

from repro.boolean.function import BooleanFunction
from repro.core.identify import ThresholdChecker
from repro.core.strategies import STRATEGIES, make_splitter
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.verify import verify_threshold_network
from repro.errors import SynthesisError
from tests.conftest import random_network


class TestFactory:
    def test_known_strategies(self):
        checker = ThresholdChecker()
        for name in STRATEGIES:
            assert make_splitter(name, checker) is not None

    def test_unknown_strategy(self):
        with pytest.raises(SynthesisError):
            make_splitter("quantum")

    def test_lookahead_requires_checker(self):
        with pytest.raises(SynthesisError):
            make_splitter("lookahead", None)

    def test_options_validate_strategy(self):
        with pytest.raises(SynthesisError):
            synthesize(
                random_network(1),
                SynthesisOptions(splitting_strategy="bogus"),
            )


class TestBalanced:
    def test_halves_cubes(self):
        splitter = make_splitter("balanced")
        f = BooleanFunction.parse("a b + a c + a d + e g")
        split = splitter(f, random.Random(0))
        assert split.mode == "or"
        sizes = sorted(p.num_cubes for p in split.parts)
        assert sizes == [2, 2]

    def test_rejects_single_cube(self):
        splitter = make_splitter("balanced")
        with pytest.raises(SynthesisError):
            splitter(BooleanFunction.parse("a b"), random.Random(0))


class TestLookahead:
    def test_finds_double_threshold_split(self):
        checker = ThresholdChecker(backend="exact")
        splitter = make_splitter("lookahead", checker, psi=4)
        # ab + ac + de + dg: splitting on a gives two threshold halves.
        f = BooleanFunction.parse("a b + a c + d e + d g")
        split = splitter(f, random.Random(0))
        assert split.mode == "or"
        for part in split.parts:
            assert checker.check_function(part) is not None

    def test_preserves_and_mode(self):
        checker = ThresholdChecker(backend="exact")
        splitter = make_splitter("lookahead", checker, psi=4)
        f = BooleanFunction.parse("a b + a c d")
        split = splitter(f, random.Random(0))
        assert split.mode == "and"


class TestEndToEnd:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_synthesize_correctly(self, strategy):
        for seed in (0, 1, 2):
            net = random_network(seed + 1500)
            th = synthesize(
                net,
                SynthesisOptions(psi=3, splitting_strategy=strategy, seed=seed),
            )
            assert th.max_fanin() <= 3
            assert verify_threshold_network(net, th), (strategy, seed)

    def test_parts_always_recombine(self):
        checker = ThresholdChecker(backend="exact")
        rng = random.Random(3)
        from tests.conftest import random_cover
        from repro.boolean.unate import syntactic_unateness

        for strategy in STRATEGIES:
            splitter = make_splitter(strategy, checker)
            for _ in range(60):
                cover = random_cover(rng, 4).scc()
                if cover.num_cubes < 2:
                    continue
                if not syntactic_unateness(cover).is_unate:
                    continue
                f = BooleanFunction(cover, ("a", "b", "c", "d"))
                split = splitter(f, rng)
                a = split.parts[0].rebased(f.variables)
                b = split.parts[1].rebased(f.variables)
                for p in range(16):
                    if split.mode == "or":
                        want = a.cover.evaluate(p) or b.cover.evaluate(p)
                    else:
                        want = a.cover.evaluate(p) and b.cover.evaluate(p)
                    assert want == f.cover.evaluate(p), (strategy, cover)
