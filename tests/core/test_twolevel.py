"""Tests for the LSAT-style two-level threshold synthesis comparator."""

import pytest

from repro.boolean.function import BooleanFunction
from repro.core.twolevel import TwoLevelOptions, synthesize_two_level
from repro.core.verify import verify_threshold_network
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork
from tests.conftest import random_network


def single_output(expression: str) -> BooleanNetwork:
    f = BooleanFunction.parse(expression)
    net = BooleanNetwork("t")
    for v in f.variables:
        net.add_input(v)
    net.add_node("f", f)
    net.add_output("f")
    return net


class TestBasics:
    def test_threshold_output_is_one_gate(self):
        net = single_output("a b + a c + b c")
        th = synthesize_two_level(net)
        assert th.num_gates == 1
        assert verify_threshold_network(net, th)

    def test_nonthreshold_output_splits(self):
        net = single_output("a b + c d")
        th = synthesize_two_level(net)
        assert th.num_gates == 3  # two parts + OR root
        assert th.depth() == 2
        assert verify_threshold_network(net, th)

    def test_binate_output(self):
        net = single_output("a b' + a' b")
        th = synthesize_two_level(net)
        assert verify_threshold_network(net, th)
        assert th.depth() <= 2

    def test_constant_output(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("k", BooleanFunction.constant(True))
        net.add_output("k")
        th = synthesize_two_level(net)
        assert th.evaluate({"a": 0})["k"] is True

    def test_po_aliasing_pi(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_output("a")
        th = synthesize_two_level(net)
        assert th.evaluate({"a": 1})["a"] is True


class TestDepthProperty:
    def test_depth_at_most_two_without_fanin_bound(self):
        for seed in range(6):
            net = random_network(seed + 1900, npi=6, nnodes=6)
            th = synthesize_two_level(net)
            assert th.depth() <= 2, seed
            assert verify_threshold_network(net, th), seed

    def test_fanin_bound_builds_or_tree(self):
        net = single_output(
            "a b + c d + e g + h i + j k + l m"
        )
        th = synthesize_two_level(net, TwoLevelOptions(max_fanin=3))
        assert th.max_fanin() <= 3
        assert verify_threshold_network(net, th)


class TestLimits:
    def test_cube_explosion_rejected(self):
        # A deep XOR chain flattens exponentially.
        net = BooleanNetwork()
        prev = net.add_input("x0")
        for i in range(1, 12):
            x = net.add_input(f"x{i}")
            prev = net.add_node(
                f"n{i}",
                BooleanFunction.parse(f"{prev} {x}' + {prev}' {x}"),
            )
        net.add_output(prev)
        with pytest.raises(SynthesisError):
            synthesize_two_level(net, TwoLevelOptions(max_cubes=64))

    def test_multi_output_sharing_is_lost(self):
        """Two-level synthesis duplicates shared logic — the structural
        weakness that motivates TELS's multi-level approach."""
        from repro.core.synthesis import SynthesisOptions, synthesize

        net = BooleanNetwork()
        for name in ("a", "b", "c", "d", "e", "h"):
            net.add_input(name)
        # shared = ab + cd is non-threshold, so each flattened output needs
        # its own split parts; TELS keeps one shared realization.
        net.add_node("shared", BooleanFunction.parse("a b + c d"))
        net.add_node("f", BooleanFunction.parse("shared e"))
        net.add_node("g", BooleanFunction.parse("shared h"))
        net.add_output("f")
        net.add_output("g")
        two = synthesize_two_level(net)
        multi = synthesize(net, SynthesisOptions(psi=4))
        assert verify_threshold_network(net, two)
        assert verify_threshold_network(net, multi)
        assert multi.num_gates < two.num_gates
