"""Hypothesis property tests for the threshold core."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.core.identify import ThresholdChecker
from repro.core.splitting import split_binate, split_k_way
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.theorems import theorem2_extend
from repro.core.threshold import WeightThresholdVector
from repro.core.verify import verify_threshold_network
from repro.network.network import BooleanNetwork


@st.composite
def covers(draw, max_vars: int = 4, max_cubes: int = 5):
    nvars = draw(st.integers(min_value=1, max_value=max_vars))
    rows = draw(
        st.lists(
            st.text(alphabet="01-", min_size=nvars, max_size=nvars),
            min_size=1,
            max_size=max_cubes,
        )
    )
    return Cover.from_strings(rows)


@settings(max_examples=150, deadline=None)
@given(covers())
def test_identified_vectors_implement_their_function(cover):
    vec = ThresholdChecker(backend="exact").check(cover)
    if vec is None:
        return
    for p in range(1 << cover.nvars):
        total = sum(vec.weights[i] for i in range(cover.nvars) if (p >> i) & 1)
        assert (total >= vec.threshold) == cover.evaluate(p)


@settings(max_examples=150, deadline=None)
@given(covers())
def test_identification_invariant_under_scc(cover):
    checker = ThresholdChecker(backend="exact")
    assert (checker.check(cover) is None) == (checker.check(cover.scc()) is None)


@settings(max_examples=100, deadline=None)
@given(covers(), st.integers(min_value=0, max_value=2))
def test_delta_on_never_helps_feasibility(cover, delta_on):
    """Raising delta_on can only shrink the feasible set."""
    loose = ThresholdChecker(delta_on=0, backend="exact").check(cover)
    tight = ThresholdChecker(delta_on=delta_on, backend="exact").check(cover)
    if tight is not None:
        assert loose is not None


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-3, max_value=3), min_size=1, max_size=4),
    st.integers(min_value=-2, max_value=4),
    st.integers(min_value=1, max_value=2),
)
def test_theorem2_extension_is_or(weights, threshold, extra):
    """For any gate, the Theorem-2 extension computes f OR new inputs."""
    base = WeightThresholdVector(tuple(weights), threshold)
    extended = theorem2_extend(base, extra)
    n = len(weights)
    for p in range(1 << (n + extra)):
        original = [(p >> i) & 1 for i in range(n)]
        news = [(p >> (n + j)) & 1 for j in range(extra)]
        want = base.evaluate(original) or any(news)
        got = extended.evaluate(original + news)
        assert got == want, (base, extended, p)


@st.composite
def small_networks(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    net = BooleanNetwork(f"h{seed}")
    signals = [net.add_input(f"x{i}") for i in range(4)]
    for j in range(draw(st.integers(min_value=1, max_value=6))):
        k = rng.randint(1, min(3, len(signals)))
        fanins = rng.sample(signals, k)
        rows = [
            "".join(rng.choice("01-") for _ in range(k))
            for _ in range(rng.randint(1, 3))
        ]
        signals.append(
            net.add_node(f"n{j}", BooleanFunction.from_sop(rows, fanins))
        )
    net.add_output(signals[-1])
    if net.is_input(signals[-1]):
        return None
    net.check()
    return net


@settings(max_examples=60, deadline=None)
@given(small_networks(), st.integers(min_value=2, max_value=4))
def test_synthesis_is_always_functionally_correct(net, psi):
    """The master invariant: synthesize() output == source network."""
    if net is None:
        return
    th = synthesize(net, SynthesisOptions(psi=psi))
    assert th.max_fanin() <= psi
    assert verify_threshold_network(net, th)


@settings(max_examples=100, deadline=None)
@given(covers(max_vars=4, max_cubes=6), st.integers(min_value=2, max_value=4))
def test_splits_preserve_function(cover, k):
    cover = cover.scc()
    if cover.num_cubes < 2:
        return
    f = BooleanFunction(cover, tuple(f"v{i}" for i in range(cover.nvars)))
    for parts in (
        split_k_way(f, k),
        split_binate(f, psi=k, rng=random.Random(0)),
    ):
        union = list(f.variables)
        rebased = [p.rebased(union) for p in parts]
        for point in range(1 << len(union)):
            want = f.cover.evaluate(point)
            got = any(r.cover.evaluate(point) for r in rebased)
            assert got == want
