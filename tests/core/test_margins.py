"""The robustness contract: synthesized gates honor their delta margins.

Every gate TELS emits must satisfy the Eq. (1) tolerances: all true input
vectors reach ``T + delta_on`` and all false vectors stay at or below
``T - delta_off``.  This is the property that makes Fig. 11's failure-rate
behaviour possible, so it gets its own direct test.
"""

import pytest

from repro.core.mapping import one_to_one_map
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.network.scripts import prepare_one_to_one
from tests.conftest import random_network


@pytest.mark.parametrize("delta_on", [0, 1, 2, 3])
def test_tels_gate_margins(delta_on):
    for seed in (0, 1):
        net = random_network(seed + 2100)
        th = synthesize(
            net, SynthesisOptions(psi=3, delta_on=delta_on, seed=seed)
        )
        for gate in th.gates():
            if gate.fanin == 0:
                continue  # constants have no weights to disturb
            on, off = gate.margins()
            if on is not None:
                assert on >= delta_on, (gate, on)
            if off is not None:
                assert off >= 1, (gate, off)  # delta_off = 1 default


@pytest.mark.parametrize("delta_on", [0, 2])
def test_one_to_one_gate_margins(delta_on):
    net = random_network(2150)
    prepared = prepare_one_to_one(net, max_fanin=3)
    th = one_to_one_map(prepared, delta_on=delta_on)
    for gate in th.gates():
        on, off = gate.margins()
        if on is not None:
            assert on >= delta_on, (gate, on)
        if off is not None:
            assert off >= 1, (gate, off)


def test_margins_bound_single_weight_perturbation():
    """A margin of m tolerates any single-weight disturbance below m (and
    below the OFF margin): the arithmetic behind Section VI-C."""
    net = random_network(2160)
    th = synthesize(net, SynthesisOptions(psi=3, delta_on=2))
    for gate in th.gates():
        if gate.fanin == 0:
            continue
        on, off = gate.margins()
        # With delta_on=2 and delta_off=1, any single weight moved by less
        # than min(on, off) cannot flip any vector of this gate.
        if on is not None and off is not None:
            assert min(on, off) >= 1


def test_deltas_recorded_on_gates():
    net = random_network(2170)
    th = synthesize(net, SynthesisOptions(psi=3, delta_on=2, delta_off=1))
    for gate in th.gates():
        assert gate.delta_on == 2
        assert gate.delta_off == 1
