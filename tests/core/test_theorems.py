"""Tests that execute Theorems 1 and 2 and verify them on enumerations."""

import random

from repro.boolean.function import BooleanFunction
from repro.core.identify import ThresholdChecker
from repro.core.theorems import or_with_inputs, replace_literal, theorem2_extend
from repro.core.threshold import WeightThresholdVector
from tests.conftest import random_cover


class TestReplaceLiteral:
    def test_paper_application(self):
        # f = x1 x2 + x3 x4; replacing x3 by x1' gives x1 x2 + x1' x4,
        # which is binate in x1 (hence not threshold) -> f not threshold.
        f = BooleanFunction.parse("x1 x2 + x3 x4")
        g = replace_literal(f, "x3", "x1")
        assert g.equivalent(BooleanFunction.parse("x1 x2 + x1' x4"))

    def test_contradictory_cubes_drop(self):
        f = BooleanFunction.parse("x1 x2")
        g = replace_literal(f, "x2", "x1")
        # x1 x1' drops: constant 0.
        assert g.cover.is_zero()

    def test_negative_phase_source(self):
        f = BooleanFunction.parse("x1' x2 + x3")
        g = replace_literal(f, "x1", "x3")
        # x1' -> x3: g = x3 x2 + x3 = x3 (after SCC ... semantically).
        assert g.equivalent(BooleanFunction.parse("x3 x2 + x3"))


class TestTheorem1Statement:
    def test_on_random_unate_functions(self):
        """If g (after literal replacement) is threshold-infeasible, the
        original f must be too — checked on random unate samples."""
        rng = random.Random(91)
        checker = ThresholdChecker(backend="exact")
        checked = 0
        for _ in range(300):
            cover = random_cover(rng, 4)
            f = BooleanFunction(cover, ("x1", "x2", "x3", "x4"))
            from repro.boolean.unate import syntactic_unateness

            if not syntactic_unateness(cover).is_unate:
                continue
            src, dst = rng.sample(["x1", "x2", "x3", "x4"], 2)
            g = replace_literal(f, src, dst)
            g_vec = checker.check_function(g)
            f_vec = checker.check_function(f)
            if g_vec is None and g.nvars > 0:
                assert f_vec is None, (f.to_expression(), src, dst)
            checked += 1
        assert checked > 50


class TestTheorem2:
    def test_paper_example(self):
        # f = x1 y2 with <1,1;2>; h = f + x3 has <1,1,2;2>.
        base = WeightThresholdVector((1, 1), 2)
        extended = theorem2_extend(base, 1)
        assert extended == WeightThresholdVector((1, 1, 2), 2)

    def test_negative_weight_example(self):
        # x1 x2' <1,-1;1>: positive threshold is 2, so the new weight is 2.
        base = WeightThresholdVector((1, -1), 1)
        extended = theorem2_extend(base, 1)
        assert extended == WeightThresholdVector((1, -1, 2), 1)

    def test_extension_implements_or(self):
        rng = random.Random(93)
        checker = ThresholdChecker(backend="exact")
        verified = 0
        for _ in range(200):
            cover = random_cover(rng, 3)
            f = BooleanFunction(cover, ("a", "b", "c"))
            vec = checker.check_function(f)
            if vec is None:
                continue
            extended = theorem2_extend(vec, 2, delta_on=0)
            h = or_with_inputs(f, ["y1", "y2"])
            h = h.rebased(["a", "b", "c", "y1", "y2"])
            for p in range(32):
                total = sum(
                    extended.weights[i] for i in range(5) if (p >> i) & 1
                )
                assert (total >= extended.threshold) == h.cover.evaluate(p), (
                    f.to_expression(),
                    vec,
                )
            verified += 1
        assert verified > 40

    def test_zero_extensions_identity(self):
        base = WeightThresholdVector((1, 2), 2)
        assert theorem2_extend(base, 0) == base

    def test_delta_on_raises_new_weight(self):
        base = WeightThresholdVector((1, 1), 2)
        assert theorem2_extend(base, 1, delta_on=2).weights[-1] == 4


class TestOrWithInputs:
    def test_adds_fresh_inputs(self):
        f = BooleanFunction.parse("a b")
        h = or_with_inputs(f, ["x"])
        assert h.evaluate({"a": 0, "b": 0, "x": 1})
        assert h.evaluate({"a": 1, "b": 1, "x": 0})
        assert not h.evaluate({"a": 1, "b": 0, "x": 0})
