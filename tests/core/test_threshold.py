"""Unit tests for threshold gates and networks."""

import numpy as np
import pytest

from repro.boolean.function import BooleanFunction
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
    gate_table,
    make_and_vector,
    make_or_vector,
)
from repro.errors import NetworkError


class TestVector:
    def test_evaluation_fires_at_threshold(self):
        v = WeightThresholdVector((1, 1), 2)
        assert v.evaluate([1, 1])
        assert not v.evaluate([1, 0])

    def test_negative_weights(self):
        v = WeightThresholdVector((1, -1), 1)  # a b'
        assert v.evaluate([1, 0])
        assert not v.evaluate([1, 1])
        assert not v.evaluate([0, 0])

    def test_area_eq14(self):
        # Sum of |w_i| plus |T|.
        assert WeightThresholdVector((2, -1, -1), 1).area == 5
        assert WeightThresholdVector((1, 1), 2).area == 4

    def test_positive_threshold(self):
        v = WeightThresholdVector((2, -1, -1), 1)
        assert v.to_positive_threshold() == 3

    def test_str(self):
        assert str(WeightThresholdVector((2, 1), 3)) == "<2, 1; 3>"

    def test_or_and_helpers(self):
        assert make_or_vector(3) == WeightThresholdVector((1, 1, 1), 1)
        assert make_and_vector(3) == WeightThresholdVector((1, 1, 1), 3)


class TestGate:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(NetworkError):
            ThresholdGate("g", ("a",), WeightThresholdVector((1, 1), 1))

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetworkError):
            ThresholdGate("g", ("a", "a"), WeightThresholdVector((1, 1), 1))

    def test_evaluate_by_name(self):
        g = ThresholdGate("g", ("a", "b"), WeightThresholdVector((1, 1), 2))
        assert g.evaluate({"a": 1, "b": 1})
        assert not g.evaluate({"a": 1, "b": 0})

    def test_local_function(self):
        g = ThresholdGate("g", ("a", "b"), WeightThresholdVector((2, -1), 1))
        func = g.local_function()
        assert func.equivalent(BooleanFunction.parse("a"))
        g2 = ThresholdGate("g", ("a", "b"), WeightThresholdVector((1, -1), 1))
        assert g2.local_function().equivalent(BooleanFunction.parse("a b'"))

    def test_implements(self):
        g = ThresholdGate("g", ("a", "b"), WeightThresholdVector((1, 1), 1))
        assert g.implements(BooleanFunction.parse("a + b"))
        assert not g.implements(BooleanFunction.parse("a b"))

    def test_margins(self):
        g = ThresholdGate("g", ("a", "b"), WeightThresholdVector((1, 1), 2))
        on, off = g.margins()
        assert on == 0  # a=b=1 sums exactly to T
        assert off == 1  # best false vector sums to 1 = T-1

    def test_margins_with_delta_on(self):
        g = ThresholdGate("g", ("a", "b"), WeightThresholdVector((2, 2), 2))
        on, off = g.margins()
        assert on == 0 and off == 2


def or_network():
    net = ThresholdNetwork("orn")
    net.add_input("a")
    net.add_input("b")
    net.add_input("c")
    net.add_gate(ThresholdGate("m", ("a", "b"), make_and_vector(2)))
    net.add_gate(ThresholdGate("f", ("m", "c"), make_or_vector(2)))
    net.add_output("f")
    return net


class TestNetwork:
    def test_evaluate(self):
        net = or_network()
        assert net.evaluate({"a": 1, "b": 1, "c": 0}) == {"f": True}
        assert net.evaluate({"a": 0, "b": 1, "c": 0}) == {"f": False}

    def test_levels_depth(self):
        net = or_network()
        assert net.depth() == 2
        assert net.levels()["m"] == 1

    def test_area(self):
        net = or_network()
        assert net.area() == (1 + 1 + 2) + (1 + 1 + 1)

    def test_max_fanin(self):
        assert or_network().max_fanin() == 2

    def test_duplicate_signal_rejected(self):
        net = or_network()
        with pytest.raises(NetworkError):
            net.add_input("m")
        with pytest.raises(NetworkError):
            net.add_gate(
                ThresholdGate("a", (), WeightThresholdVector((), 1))
            )

    def test_cycle_detected(self):
        net = ThresholdNetwork()
        net.add_gate(ThresholdGate("p", ("q",), WeightThresholdVector((1,), 1)))
        net.add_gate(ThresholdGate("q", ("p",), WeightThresholdVector((1,), 1)))
        with pytest.raises(NetworkError):
            net.topological_order()

    def test_cleanup(self):
        net = or_network()
        net.add_gate(ThresholdGate("dead", ("a",), make_or_vector(1)))
        assert net.cleanup() == 1
        assert not net.has_gate("dead")

    def test_missing_output_detected(self):
        net = ThresholdNetwork()
        net.add_output("ghost")
        with pytest.raises(NetworkError):
            net.check()

    def test_gate_table_order(self):
        rows = list(gate_table(or_network()))
        names = [r[0] for r in rows]
        assert names.index("m") < names.index("f")


class TestMatrixSimulation:
    def test_matches_scalar_evaluation(self):
        net = or_network()
        rng = np.random.default_rng(0)
        matrix = {
            name: rng.integers(0, 2, size=50).astype(np.float64)
            for name in net.inputs
        }
        out = net.simulate_matrix(matrix)["f"]
        for k in range(50):
            assignment = {name: bool(matrix[name][k]) for name in net.inputs}
            assert out[k] == net.evaluate(assignment)["f"]

    def test_weight_noise_can_flip_output(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(
            ThresholdGate("f", ("a",), WeightThresholdVector((1,), 1))
        )
        net.add_output("f")
        matrix = {"a": np.array([1.0])}
        clean = net.simulate_matrix(matrix)["f"]
        assert clean[0]
        noisy = net.simulate_matrix(matrix, weight_noise={"f": np.array([-0.6])})
        assert not noisy["f"][0]

    def test_zero_input_gate(self):
        net = ThresholdNetwork()
        net.add_input("a")
        net.add_gate(ThresholdGate("k", (), WeightThresholdVector((), 0)))
        net.add_output("k")
        out = net.simulate_matrix({"a": np.zeros(4)})
        assert out["k"].all()
