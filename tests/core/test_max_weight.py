"""Tests for the max-weight bound extension (RTD weight-range limits)."""

import pytest

from repro.boolean.function import BooleanFunction
from repro.core.identify import ThresholdChecker
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.verify import verify_threshold_network
from tests.conftest import random_network


class TestCheckerBound:
    def test_function_needing_weight_2_rejected_at_bound_1(self):
        # x1 x2' + x1 x3' needs w1 = 2.
        f = BooleanFunction.parse("x1 x2' + x1 x3'")
        assert ThresholdChecker().check_function(f) is not None
        assert ThresholdChecker(max_weight=1).check_function(f) is None

    def test_unit_weight_functions_still_pass(self):
        f = BooleanFunction.parse("a b + a c + b c")  # majority: all 1s
        vec = ThresholdChecker(max_weight=1).check_function(f)
        assert vec is not None
        assert all(abs(w) <= 1 for w in vec.weights)

    def test_bound_respected_in_solutions(self):
        import random

        from tests.conftest import random_cover

        rng = random.Random(5)
        checker = ThresholdChecker(max_weight=2, backend="exact")
        for _ in range(80):
            cover = random_cover(rng, 4)
            vec = checker.check(cover)
            if vec is not None:
                assert all(abs(w) <= 2 for w in vec.weights), cover

    def test_cache_respects_bound(self):
        f = BooleanFunction.parse("x1 x2' + x1 x3'")
        a = ThresholdChecker(max_weight=None)
        b = ThresholdChecker(max_weight=1)
        assert a.check_function(f) is not None
        assert b.check_function(f) is None


class TestSynthesisWithBound:
    @pytest.mark.parametrize("bound", [1, 2])
    def test_all_gates_respect_bound(self, bound):
        for seed in (0, 1, 2):
            net = random_network(seed + 1700)
            th = synthesize(
                net, SynthesisOptions(psi=3, max_weight=bound, seed=seed)
            )
            for gate in th.gates():
                assert all(abs(w) <= bound for w in gate.weights), gate
            assert verify_threshold_network(net, th), (seed, bound)

    def test_bound_costs_gates(self):
        net = random_network(1750)
        free = synthesize(net, SynthesisOptions(psi=4))
        bounded = synthesize(net, SynthesisOptions(psi=4, max_weight=1))
        assert bounded.num_gates >= free.num_gates

    def test_bound_one_yields_and_or_network(self):
        """With |w| <= 1 every gate is a simple unate gate generalization."""
        net = random_network(1760)
        th = synthesize(net, SynthesisOptions(psi=3, max_weight=1))
        for gate in th.gates():
            assert all(w in (-1, 0, 1) for w in gate.weights)
        assert verify_threshold_network(net, th)
