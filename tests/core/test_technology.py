"""Tests for the RTD/MOBILE technology cost model."""

from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.technology import (
    format_mobile_report,
    gate_cost,
    mobile_report,
)
from repro.core.threshold import ThresholdGate, WeightThresholdVector
from tests.conftest import random_network


class TestGateCost:
    def test_branch_split(self):
        gate = ThresholdGate(
            "g", ("a", "b", "c"), WeightThresholdVector((2, -1, 1), 1)
        )
        cost = gate_cost(gate)
        assert cost.positive_branches == 2
        assert cost.negative_branches == 1
        assert cost.rtd_area == 5  # |2|+|−1|+|1|+|1|
        assert cost.input_rtds == 3
        assert cost.total_devices == 8  # 3 branches x 2 + MOBILE core 2

    def test_constant_gate(self):
        gate = ThresholdGate("k", (), WeightThresholdVector((), 1))
        cost = gate_cost(gate)
        assert cost.input_rtds == 0
        assert cost.total_devices == 2


class TestNetworkReport:
    def test_totals_match_metrics(self):
        net = random_network(2200)
        th = synthesize(net, SynthesisOptions(psi=3))
        report = mobile_report(th)
        assert len(report.gates) == th.num_gates
        assert report.total_rtd_area == th.area()
        assert report.clock_phases == th.depth()

    def test_format(self):
        net = random_network(2201)
        th = synthesize(net, SynthesisOptions(psi=3))
        text = format_mobile_report(mobile_report(th))
        assert "MOBILE gates" in text
        assert "clock phases" in text
