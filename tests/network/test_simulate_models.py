"""Differential test: packed threshold simulation vs per-gate ``fires()``.

:func:`repro.network.simulate.simulate_threshold_vectors` evaluates every
gate through its vector's *truth table* on the packed BitVec substrate.
The ground truth is the gate's own firing rule: weighted sum of the fanin
values, then ``vector.fires(total)``.  Hypothesis draws random DAGs of
gates admitted by each registered gate model and checks that the two
evaluation paths agree bit-for-bit on every signal, for every input
combination — any divergence is a bug in the truth-table construction,
the packed kernels, or the firing semantics themselves.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold import (
    MultiThresholdVector,
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.gates import get_model, model_names
from repro.network.simulate import (
    exhaustive_threshold_pi_vectors,
    simulate_threshold_vectors,
)

MAX_INPUTS = 4
MAX_GATES = 6
MAX_FANIN = 3
MAX_WEIGHT = 3  # within the flash grid (levels=8) for every model

nonzero_weights = st.integers(-MAX_WEIGHT, MAX_WEIGHT).filter(lambda w: w != 0)


@st.composite
def gate_vectors(draw, weights: tuple[int, ...], model: str):
    """A weight-threshold (or multi-threshold) vector over ``weights``.

    Thresholds are drawn from the reachable weighted-sum range (padded by
    one on each side so constant-true and constant-false gates appear).
    ``multi-threshold`` draws a strictly increasing threshold list half
    the time; the other models always use a single threshold.
    """
    lo = sum(min(w, 0) for w in weights)
    hi = sum(max(w, 0) for w in weights)
    if model == "multi-threshold" and draw(st.booleans()):
        size = draw(st.integers(1, min(3, hi - lo + 2)))
        thresholds = draw(
            st.sets(
                st.integers(lo, hi + 1), min_size=size, max_size=size
            )
        )
        return MultiThresholdVector(weights, tuple(sorted(thresholds)))
    return WeightThresholdVector(weights, draw(st.integers(lo, hi + 1)))


@st.composite
def threshold_networks(draw, model: str) -> ThresholdNetwork:
    """A random gate DAG whose vectors the given gate model admits."""
    backend = get_model(model)
    network = ThresholdNetwork("hypothesis")
    signals: list[str] = []
    for i in range(draw(st.integers(1, MAX_INPUTS))):
        signals.append(network.add_input(f"x{i}"))
    num_gates = draw(st.integers(1, MAX_GATES))
    for g in range(num_gates):
        fanin = draw(st.integers(1, min(MAX_FANIN, len(signals))))
        inputs = tuple(
            draw(
                st.lists(
                    st.sampled_from(signals),
                    min_size=fanin,
                    max_size=fanin,
                    unique=True,
                )
            )
        )
        weights = tuple(
            draw(nonzero_weights) for _ in range(fanin)
        )
        vector = draw(gate_vectors(weights, model))
        if not backend.admits_vector(vector):
            vector = WeightThresholdVector(weights, max(weights))
        name = f"g{g}"
        network.add_gate(ThresholdGate(name, inputs, vector))
        signals.append(name)
    # Every gate observable: the last gate plus a sample become outputs.
    network.add_output(f"g{num_gates - 1}")
    for extra in draw(
        st.lists(
            st.sampled_from([f"g{i}" for i in range(num_gates)]),
            unique=True,
            max_size=3,
        )
    ):
        if extra != f"g{num_gates - 1}":
            network.add_output(extra)
    return network


def reference_simulate(
    network: ThresholdNetwork, assignment: dict[str, int]
) -> dict[str, int]:
    """Per-gate ground truth: weighted sum, then ``vector.fires``."""
    values = dict(assignment)
    for name in network.topological_order():
        gate = network.gate(name)
        total = sum(
            w * values[f]
            for w, f in zip(gate.vector.weights, gate.inputs)
        )
        values[name] = int(gate.vector.fires(total))
    return values


@pytest.mark.parametrize("model", sorted(model_names()))
def test_models_are_registered(model):
    assert get_model(model).name == model


class TestPackedMatchesFires:
    """One differential property per registered gate model."""

    def check(self, network: ThresholdNetwork) -> None:
        vecs, width = exhaustive_threshold_pi_vectors(network)
        packed = simulate_threshold_vectors(network, vecs, width)
        inputs = list(network.inputs)
        for k in range(width):
            assignment = {
                name: (k >> i) & 1 for i, name in enumerate(inputs)
            }
            reference = reference_simulate(network, assignment)
            for name in network.topological_order():
                assert packed[name].test(k) == bool(reference[name]), (
                    f"gate {name!r} diverges on vector {k}: "
                    f"packed={packed[name].test(k)} "
                    f"fires={reference[name]}"
                )

    @settings(max_examples=60, deadline=None)
    @given(network=threshold_networks("ltg"))
    def test_ltg(self, network):
        self.check(network)

    @settings(max_examples=60, deadline=None)
    @given(network=threshold_networks("multi-threshold"))
    def test_multi_threshold(self, network):
        self.check(network)

    @settings(max_examples=60, deadline=None)
    @given(network=threshold_networks("flash"))
    def test_flash(self, network):
        self.check(network)
