"""Unit tests for the BLIF-TH threshold-network format."""

import pytest

from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.errors import BlifError
from repro.io.thblif import parse_thblif, read_thblif, to_thblif, write_thblif


def sample_network():
    net = ThresholdNetwork("s")
    net.add_input("a")
    net.add_input("b")
    net.add_gate(
        ThresholdGate("g", ("a", "b"), WeightThresholdVector((2, -1), 1), 1, 1)
    )
    net.add_gate(
        ThresholdGate("f", ("g", "a"), WeightThresholdVector((1, 1), 2))
    )
    net.add_output("f")
    return net


class TestRoundtrip:
    def test_text_roundtrip(self):
        net = sample_network()
        again = parse_thblif(to_thblif(net))
        assert again.inputs == net.inputs
        assert again.outputs == net.outputs
        assert again.num_gates == net.num_gates
        g = again.gate("g")
        assert g.vector == WeightThresholdVector((2, -1), 1)
        assert g.delta_on == 1 and g.delta_off == 1

    def test_behavior_preserved(self):
        net = sample_network()
        again = parse_thblif(to_thblif(net))
        for p in range(4):
            assignment = {"a": p & 1, "b": (p >> 1) & 1}
            assert net.evaluate(assignment) == again.evaluate(assignment)

    def test_file_roundtrip(self, tmp_path):
        net = sample_network()
        path = tmp_path / "net.th"
        write_thblif(net, path)
        again = read_thblif(path)
        assert again.num_gates == 2


class TestErrors:
    def test_vector_outside_gate(self):
        with pytest.raises(BlifError):
            parse_thblif(".model m\n.inputs a\n.vector 1 1\n.end\n")

    def test_gate_without_vector(self):
        with pytest.raises(BlifError):
            parse_thblif(
                ".model m\n.inputs a\n.outputs f\n.thgate a f\n.end\n"
            )

    def test_wrong_vector_arity(self):
        with pytest.raises(BlifError):
            parse_thblif(
                ".model m\n.inputs a\n.outputs f\n.thgate a f\n.vector 1 1 1\n.end\n"
            )

    def test_non_integer_weight(self):
        with pytest.raises(BlifError):
            parse_thblif(
                ".model m\n.inputs a\n.outputs f\n.thgate a f\n.vector x 1\n.end\n"
            )

    def test_unknown_directive(self):
        with pytest.raises(BlifError):
            parse_thblif(".model m\n.bogus\n.end\n")
