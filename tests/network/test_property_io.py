"""Hypothesis round-trip properties for the I/O formats."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.io.blif import parse_blif, to_blif
from repro.io.thblif import parse_thblif, to_thblif
from repro.network.network import BooleanNetwork
from repro.network.simulate import equivalent_networks, output_signatures


@st.composite
def small_boolean_networks(draw):
    num_inputs = draw(st.integers(min_value=1, max_value=5))
    net = BooleanNetwork("m")
    inputs = [net.add_input(f"i{k}") for k in range(num_inputs)]
    signals = list(inputs)
    for j in range(draw(st.integers(min_value=1, max_value=5))):
        k = draw(st.integers(min_value=1, max_value=min(3, len(signals))))
        fanins = draw(
            st.permutations(signals).map(lambda s: list(s)[:k])
        )
        rows = draw(
            st.lists(
                st.text(alphabet="01-", min_size=k, max_size=k),
                min_size=1,
                max_size=3,
            )
        )
        func = BooleanFunction(Cover.from_strings(rows), tuple(fanins))
        signals.append(net.add_node(f"n{j}", func))
    net.add_output(signals[-1])
    if net.is_input(signals[-1]):
        net.add_node("buf", BooleanFunction.parse(signals[-1]))
        net._outputs = ["buf"]
    net.check()
    return net


@settings(max_examples=60, deadline=None)
@given(small_boolean_networks())
def test_blif_roundtrip_preserves_function(net):
    again = parse_blif(to_blif(net))
    assert equivalent_networks(net, again)


@st.composite
def small_threshold_networks(draw):
    num_inputs = draw(st.integers(min_value=1, max_value=4))
    net = ThresholdNetwork("t")
    inputs = [net.add_input(f"i{k}") for k in range(num_inputs)]
    signals = list(inputs)
    for j in range(draw(st.integers(min_value=1, max_value=4))):
        k = draw(st.integers(min_value=1, max_value=min(3, len(signals))))
        fanins = tuple(draw(st.permutations(signals)))[:k]
        weights = tuple(
            draw(
                st.lists(
                    st.integers(min_value=-3, max_value=3),
                    min_size=k,
                    max_size=k,
                )
            )
        )
        threshold = draw(st.integers(min_value=-2, max_value=5))
        name = f"g{j}"
        net.add_gate(
            ThresholdGate(
                name,
                fanins,
                WeightThresholdVector(weights, threshold),
                draw(st.integers(min_value=0, max_value=2)),
                draw(st.integers(min_value=0, max_value=2)),
            )
        )
        signals.append(name)
    net.add_output(signals[-1])
    if net.is_input(signals[-1]):
        return None
    net.check()
    return net


@settings(max_examples=60, deadline=None)
@given(small_threshold_networks())
def test_thblif_roundtrip_preserves_everything(net):
    if net is None:
        return
    again = parse_thblif(to_thblif(net))
    assert again.inputs == net.inputs
    assert again.outputs == net.outputs
    for gate in net.gates():
        twin = again.gate(gate.name)
        assert twin.vector == gate.vector
        assert twin.inputs == gate.inputs
        assert twin.delta_on == gate.delta_on
        assert twin.delta_off == gate.delta_off
    for p in range(1 << len(net.inputs)):
        assignment = {
            name: (p >> i) & 1 for i, name in enumerate(net.inputs)
        }
        assert net.evaluate(assignment) == again.evaluate(assignment)


def threshold_to_boolean(th: ThresholdNetwork) -> BooleanNetwork:
    """Expand every gate's local SOP so the bit-parallel simulator applies."""
    net = BooleanNetwork(th.name)
    for name in th.inputs:
        net.add_input(name)
    for name in th.topological_order():
        net.add_node(name, th.gate(name).local_function())
    for out in th.outputs:
        net.add_output(out)
    net.check()
    return net


@settings(max_examples=60, deadline=None)
@given(small_threshold_networks())
def test_thblif_roundtrip_preserves_simulation_signatures(net):
    """Round-tripped networks agree under the word-level simulator, not just
    gate-table equality: same random-vector output signatures and full
    equivalence through the SOP expansion of every gate."""
    if net is None:
        return
    again = parse_thblif(to_thblif(net))
    a = threshold_to_boolean(net)
    b = threshold_to_boolean(again)
    assert output_signatures(a, vectors=512, seed=3) == output_signatures(
        b, vectors=512, seed=3
    )
    assert equivalent_networks(a, b)
    for gate in net.gates():
        twin = again.gate(gate.name)
        assert (twin.delta_on, twin.delta_off) == (
            gate.delta_on,
            gate.delta_off,
        )
