"""Unit tests for bit-parallel simulation and equivalence checking."""

import random

from repro.boolean.function import BooleanFunction
from repro.network.network import BooleanNetwork
from repro.network.simulate import (
    equivalent_networks,
    eval_function_words,
    exhaustive_pi_words,
    output_signatures,
    random_pi_words,
    simulate_words,
)
from tests.conftest import random_network


def tiny_net():
    net = BooleanNetwork("t")
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", BooleanFunction.parse("a b'"))
    net.add_output("f")
    return net


class TestWordEvaluation:
    def test_eval_function_words(self):
        f = BooleanFunction.parse("a b'")
        words = {"a": 0b1100, "b": 0b1010}
        assert eval_function_words(f, words, 0b1111) == 0b0100

    def test_simulate_words_matches_pointwise(self):
        net = random_network(5)
        rng = random.Random(0)
        width = 64
        words = random_pi_words(net, width, rng)
        sim = simulate_words(net, words, width)
        for k in (0, 13, 63):
            assignment = {
                name: bool((words[name] >> k) & 1) for name in net.inputs
            }
            truth = net.evaluate_all(assignment)
            for out in net.outputs:
                assert bool((sim[out] >> k) & 1) == truth[out]


class TestExhaustiveWords:
    def test_patterns_enumerate_all_points(self):
        net = tiny_net()
        words, width = exhaustive_pi_words(net)
        assert width == 4
        seen = set()
        for k in range(width):
            point = tuple(
                (words[name] >> k) & 1 for name in net.inputs
            )
            seen.add(point)
        assert len(seen) == 4

    def test_exhaustive_simulation_equals_truth_table(self):
        net = tiny_net()
        words, width = exhaustive_pi_words(net)
        sim = simulate_words(net, words, width)
        for k in range(width):
            a = bool((words["a"] >> k) & 1)
            b = bool((words["b"] >> k) & 1)
            assert bool((sim["f"] >> k) & 1) == (a and not b)


class TestEquivalence:
    def test_identical_networks_equivalent(self):
        net = random_network(9)
        assert equivalent_networks(net, net.copy())

    def test_detects_single_node_difference(self):
        net = tiny_net()
        other = tiny_net()
        other.set_function("f", BooleanFunction.parse("a b"))
        assert not equivalent_networks(net, other)

    def test_different_interfaces_not_equivalent(self):
        net = tiny_net()
        other = BooleanNetwork("u")
        other.add_input("a")
        other.add_node("f", BooleanFunction.parse("a"))
        other.add_output("f")
        assert not equivalent_networks(net, other)

    def test_random_fallback_for_wide_networks(self):
        net = random_network(11, npi=20, nnodes=10)
        assert equivalent_networks(net, net.copy(), vectors=128)

    def test_signatures_deterministic(self):
        net = random_network(13)
        assert output_signatures(net) == output_signatures(net)
