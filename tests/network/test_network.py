"""Unit tests for the BooleanNetwork data structure."""

import pytest

from repro.boolean.function import BooleanFunction
from repro.errors import NetworkError
from repro.network.network import BooleanNetwork, network_from_functions


def simple_net():
    net = BooleanNetwork("t")
    net.add_input("a")
    net.add_input("b")
    net.add_node("n1", BooleanFunction.parse("a b"))
    net.add_node("n2", BooleanFunction.parse("n1 + a"))
    net.add_output("n2")
    return net


class TestConstruction:
    def test_duplicate_input_rejected(self):
        net = BooleanNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")

    def test_duplicate_node_rejected(self):
        net = simple_net()
        with pytest.raises(NetworkError):
            net.add_node("n1", BooleanFunction.parse("a"))

    def test_node_shadowing_input_rejected(self):
        net = simple_net()
        with pytest.raises(NetworkError):
            net.add_node("a", BooleanFunction.parse("b"))

    def test_input_shadowing_node_rejected(self):
        net = simple_net()
        with pytest.raises(NetworkError):
            net.add_input("n1")

    def test_self_loop_rejected(self):
        net = BooleanNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_node("x", BooleanFunction.parse("x + a"))

    def test_duplicate_output_rejected(self):
        net = simple_net()
        with pytest.raises(NetworkError):
            net.add_output("n2")

    def test_fresh_names_are_unique(self):
        net = simple_net()
        names = {net.fresh_name() for _ in range(50)}
        assert len(names) == 50
        assert all(n not in net for n in names)

    def test_network_from_functions(self):
        net = network_from_functions(
            "m", ["a", "b"], {"f": BooleanFunction.parse("a + b")}
        )
        assert net.outputs == ("f",)
        assert net.evaluate({"a": 0, "b": 1}) == {"f": True}


class TestTopology:
    def test_fanins(self):
        net = simple_net()
        assert net.fanins("n1") == ("a", "b")
        assert net.fanins("n2") == ("n1", "a")

    def test_fanout_map(self):
        net = simple_net()
        fanouts = net.fanout_map()
        assert fanouts["a"] == ["n1", "n2"]
        assert fanouts["n1"] == ["n2"]
        assert fanouts["n2"] == []

    def test_topological_order_respects_edges(self):
        net = simple_net()
        order = net.topological_order()
        assert order.index("n1") < order.index("n2")

    def test_cycle_detected(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("p", BooleanFunction.parse("q"))
        net.add_node("q", BooleanFunction.parse("p"))
        with pytest.raises(NetworkError):
            net.topological_order()

    def test_undefined_fanin_detected(self):
        net = BooleanNetwork()
        net.add_node("n", BooleanFunction.parse("ghost"))
        with pytest.raises(NetworkError):
            net.check()

    def test_levels_and_depth(self):
        net = simple_net()
        levels = net.levels()
        assert levels["a"] == 0
        assert levels["n1"] == 1
        assert levels["n2"] == 2
        assert net.depth() == 2

    def test_transitive_fanin(self):
        net = simple_net()
        assert net.transitive_fanin("n2") == {"a", "b", "n1"}

    def test_num_literals(self):
        assert simple_net().num_literals() == 4


class TestEvaluation:
    def test_evaluate(self):
        net = simple_net()
        assert net.evaluate({"a": 1, "b": 0}) == {"n2": True}
        assert net.evaluate({"a": 0, "b": 1}) == {"n2": False}

    def test_missing_input_value(self):
        net = simple_net()
        with pytest.raises(NetworkError):
            net.evaluate({"a": 1})

    def test_evaluate_all_includes_internal(self):
        values = simple_net().evaluate_all({"a": 1, "b": 1})
        assert values["n1"] is True


class TestMaintenance:
    def test_copy_is_independent(self):
        net = simple_net()
        clone = net.copy()
        clone.set_function("n1", BooleanFunction.parse("a + b"))
        assert net.function("n1").to_expression() == "a b"

    def test_cleanup_removes_dead_nodes(self):
        net = simple_net()
        net.add_node("dead", BooleanFunction.parse("a"))
        removed = net.cleanup()
        assert removed == 1
        assert not net.has_node("dead")

    def test_cleanup_keeps_live_cone(self):
        net = simple_net()
        net.cleanup()
        assert net.has_node("n1")

    def test_remove_node(self):
        net = simple_net()
        net.remove_node("n2")
        assert not net.has_node("n2")
        with pytest.raises(NetworkError):
            net.remove_node("n2")

    def test_set_function_unknown_node(self):
        net = simple_net()
        with pytest.raises(NetworkError):
            net.set_function("ghost", BooleanFunction.parse("a"))

    def test_check_passes_on_sane_network(self):
        simple_net().check()

    def test_output_alias_of_input_allowed(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_output("a")
        net.check()

    def test_repr(self):
        assert "inputs=2" in repr(simple_net())
