"""Unit tests for the PLA reader/writer."""

import pytest

from repro.errors import PlaError
from repro.io.pla import parse_pla, pla_to_network, read_pla, to_pla, write_pla

SAMPLE = """\
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 01
1-1 11
.e
"""


class TestParsing:
    def test_dimensions_and_labels(self):
        pla = parse_pla(SAMPLE)
        assert pla.num_inputs == 3
        assert pla.num_outputs == 2
        assert pla.input_labels == ["a", "b", "c"]
        assert pla.output_labels == ["f", "g"]

    def test_on_sets(self):
        pla = parse_pla(SAMPLE)
        assert pla.on_sets[0].evaluate(0b011)  # ab
        assert pla.on_sets[1].evaluate(0b100)  # c
        assert not pla.on_sets[0].evaluate(0b100)

    def test_default_labels(self):
        pla = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert pla.input_labels == ["x0", "x1"]
        assert pla.output_labels == ["z0"]

    def test_dc_output_char(self):
        pla = parse_pla(".i 1\n.o 1\n1 -\n.e\n")
        assert pla.dc_sets[0].num_cubes == 1
        assert pla.on_sets[0].is_zero()

    def test_type_fr_accepted(self):
        parse_pla(".i 1\n.o 1\n.type fr\n1 1\n.e\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(PlaError):
            parse_pla(".i 1\n.o 1\n.type nonsense\n1 1\n.e\n")

    def test_term_before_header_rejected(self):
        with pytest.raises(PlaError):
            parse_pla("11 1\n.i 2\n.o 1\n.e\n")

    def test_width_mismatch_rejected(self):
        with pytest.raises(PlaError):
            parse_pla(".i 2\n.o 1\n111 1\n.e\n")

    def test_label_count_mismatch(self):
        with pytest.raises(PlaError):
            parse_pla(".i 2\n.o 1\n.ilb a\n11 1\n.e\n")


class TestNetworkConversion:
    def test_two_level_network(self):
        net = pla_to_network(parse_pla(SAMPLE), "sample")
        assert net.outputs == ("f", "g")
        assert net.evaluate({"a": 1, "b": 1, "c": 0}) == {"f": True, "g": False}
        assert net.evaluate({"a": 1, "b": 0, "c": 1}) == {"f": True, "g": True}


class TestRoundtrip:
    def test_text_roundtrip(self):
        pla = parse_pla(SAMPLE)
        again = parse_pla(to_pla(pla))
        for k in range(pla.num_outputs):
            assert again.on_sets[k].equivalent(pla.on_sets[k])

    def test_file_roundtrip(self, tmp_path):
        pla = parse_pla(SAMPLE)
        path = tmp_path / "f.pla"
        write_pla(pla, path)
        again = read_pla(path)
        assert again.input_labels == pla.input_labels
