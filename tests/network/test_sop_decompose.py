"""Tests for the SOP (SIS-style) decomposition variant."""

import pytest

from repro.boolean.function import BooleanFunction
from repro.errors import NetworkError
from repro.network.network import BooleanNetwork
from repro.network.simulate import equivalent_networks
from repro.network.transform import decompose
from tests.conftest import random_network


def wide_node_net():
    net = BooleanNetwork("wide")
    for name in ("a", "b", "c", "d", "e", "g"):
        net.add_input(name)
    net.add_node(
        "f", BooleanFunction.parse("a b + a c + d e + d g + b g")
    )
    net.add_output("f")
    return net


class TestSopStyle:
    def test_unknown_style_rejected(self):
        net = wide_node_net()
        with pytest.raises(NetworkError):
            decompose(net, style="magic")

    def test_structure_is_and_or(self):
        net = wide_node_net()
        decompose(net, max_fanin=0, style="sop")
        # Exactly: one AND gate per multi-literal cube + one OR root.
        ands = [
            n
            for n in net.node_names
            if net.function(n).num_cubes == 1
            and net.function(n).num_literals > 1
        ]
        assert len(ands) == 5
        assert equivalent_networks(wide_node_net(), net)

    def test_fanin_sensitivity(self):
        """SOP decomposition shrinks as the fanin bound is relaxed —
        the property behind the Fig. 10 one-to-one curve."""
        counts = {}
        for fanin in (2, 4, 8):
            net = wide_node_net()
            decompose(net, max_fanin=fanin, style="sop")
            counts[fanin] = net.num_nodes
            assert equivalent_networks(wide_node_net(), net)
        assert counts[2] > counts[8]

    def test_equivalence_fuzz(self):
        for seed in range(8):
            net = random_network(seed + 2000)
            out = net.copy()
            decompose(out, max_fanin=3, style="sop", inverter_gates=True)
            assert equivalent_networks(net, out), seed
            for node in out.node_names:
                assert len(out.fanins(node)) <= 3

    def test_constant_nodes_survive(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("k", BooleanFunction.constant(True))
        net.add_node("z", BooleanFunction.constant(False))
        net.add_output("k")
        net.add_output("z")
        decompose(net, style="sop")
        assert net.evaluate({"a": 0}) == {"k": True, "z": False}
