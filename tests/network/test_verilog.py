"""Tests for the Verilog exporters (textual; no simulator available)."""

import re

from repro.core.synthesis import SynthesisOptions, synthesize
from repro.io.verilog import (
    boolean_to_verilog,
    threshold_to_verilog,
    write_verilog,
)
from tests.conftest import random_network


class TestThresholdVerilog:
    def test_structure(self):
        net = random_network(1600)
        th = synthesize(net, SynthesisOptions(psi=3))
        text = threshold_to_verilog(th)
        assert text.count("endmodule") >= 2  # primitives + top
        assert f"module {th.name}" in text.replace("[", "_").replace("]", "_") or "module" in text
        # One instantiation per gate.
        assert text.count(" ltg") - text.count("module ltg") == th.num_gates

    def test_parameters_carry_weights(self):
        net = random_network(1601)
        th = synthesize(net, SynthesisOptions(psi=3))
        text = threshold_to_verilog(th)
        gate = next(iter(th.gates()))
        assert f".T({gate.threshold})" in text

    def test_identifiers_are_legal(self):
        net = random_network(1602)
        th = synthesize(net, SynthesisOptions(psi=3))  # names like [t0]
        text = threshold_to_verilog(th)
        assert "[t" not in text  # escaped

    def test_po_aliasing_pi(self):
        from repro.network.network import BooleanNetwork

        src = BooleanNetwork("alias")
        src.add_input("a")
        src.add_output("a")
        th = synthesize(src, SynthesisOptions())
        text = threshold_to_verilog(th)
        assert "a_po" in text

    def test_write_to_file(self, tmp_path):
        net = random_network(1603)
        th = synthesize(net, SynthesisOptions(psi=3))
        path = tmp_path / "net.v"
        write_verilog(th, path)
        assert path.read_text().startswith("//")


class TestBooleanVerilog:
    def test_assign_style(self):
        net = random_network(1610)
        text = boolean_to_verilog(net)
        assert text.count("assign") == net.num_nodes
        assert "module" in text

    def test_write_dispatch(self, tmp_path):
        net = random_network(1611)
        path = tmp_path / "bool.v"
        write_verilog(net, path)
        assert "assign" in path.read_text()

    def test_every_wire_declared_or_port(self):
        net = random_network(1612)
        text = boolean_to_verilog(net)
        assigned = set(re.findall(r"assign (\w+)", text))
        declared = set(re.findall(r"wire (\w+)", text))
        ports = set(re.findall(r"(?:input|output) (\w+)", text))
        assert assigned <= declared | ports
