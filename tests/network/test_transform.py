"""Unit tests for the network restructuring transforms."""

from repro.boolean.function import BooleanFunction
from repro.network.network import BooleanNetwork
from repro.network.simulate import equivalent_networks
from repro.network.transform import (
    collapse_network,
    decompose,
    divide_functions,
    eliminate,
    extract,
    extract_cubes,
    resubstitute,
    simplify,
    sweep,
)
from tests.conftest import random_network


class TestSweep:
    def test_folds_buffer(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("buf", BooleanFunction.parse("a"))
        net.add_node("f", BooleanFunction.parse("buf"))
        net.add_output("f")
        sweep(net)
        assert not net.has_node("buf")
        assert net.evaluate({"a": 1}) == {"f": True}

    def test_folds_inverter(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("inv", BooleanFunction.parse("a'"))
        net.add_node("f", BooleanFunction.parse("inv b"))
        net.add_output("f")
        sweep(net)
        assert not net.has_node("inv")
        assert net.evaluate({"a": 0, "b": 1}) == {"f": True}

    def test_propagates_constants(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("one", BooleanFunction.constant(True))
        net.add_node("f", BooleanFunction.parse("one a"))
        net.add_output("f")
        sweep(net)
        assert not net.has_node("one")
        assert net.evaluate({"a": 1}) == {"f": True}
        assert net.evaluate({"a": 0}) == {"f": False}

    def test_keeps_trivial_po_driver(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("f", BooleanFunction.parse("a'"))
        net.add_output("f")
        sweep(net)
        assert net.has_node("f")

    def test_removes_dangling(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("dead", BooleanFunction.parse("a'"))
        net.add_node("f", BooleanFunction.parse("a"))
        net.add_output("f")
        sweep(net)
        assert not net.has_node("dead")

    def test_equivalence_fuzz(self):
        for seed in range(15):
            net = random_network(seed)
            swept = net.copy()
            sweep(swept)
            assert equivalent_networks(net, swept), seed


class TestEliminate:
    def test_collapses_single_use_node(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("m", BooleanFunction.parse("a b"))
        net.add_node("f", BooleanFunction.parse("m + b"))
        net.add_output("f")
        eliminate(net, threshold=0)
        assert not net.has_node("m")
        assert net.evaluate({"a": 1, "b": 0}) == {"f": False}

    def test_preserves_po_nodes(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("f", BooleanFunction.parse("a"))
        net.add_output("f")
        eliminate(net, threshold=100)
        assert net.has_node("f")

    def test_keeps_high_value_shared_nodes(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("big", BooleanFunction.parse("a b + c d + a c"))
        users = []
        for i in range(4):
            users.append(
                net.add_node(f"u{i}", BooleanFunction.parse(f"big + {'abcd'[i]}"))
            )
            net.add_output(f"u{i}")
        eliminate(net, threshold=0)
        assert net.has_node("big")  # 4 users x 5 factored literals: keep

    def test_equivalence_fuzz(self):
        for seed in range(15):
            net = random_network(seed + 50)
            out = net.copy()
            eliminate(out, threshold=0)
            assert equivalent_networks(net, out), seed


class TestSimplify:
    def test_simplifies_redundant_cover(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", BooleanFunction.from_sop(["11", "10", "01"], ["a", "b"]))
        net.add_output("f")
        saved = simplify(net)
        assert saved > 0
        assert net.function("f").num_literals == 2  # a + b

    def test_equivalence_fuzz(self):
        for seed in range(15):
            net = random_network(seed + 100)
            out = net.copy()
            simplify(out)
            assert equivalent_networks(net, out), seed


class TestExtract:
    def test_extracts_shared_kernel(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d", "e"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a c + a d"))
        net.add_node("g", BooleanFunction.parse("b c + b d + e"))
        net.add_output("f")
        net.add_output("g")
        created = extract(net)
        assert created >= 1
        # The shared kernel c + d should now be a fanout node.
        assert equivalent_networks(net, _reference_extract())
        fanouts = net.fanout_map()
        shared = [
            s
            for s, readers in fanouts.items()
            if net.has_node(s) and len(readers) >= 2
        ]
        assert shared

    def test_equivalence_fuzz(self):
        for seed in range(15):
            net = random_network(seed + 150)
            out = net.copy()
            extract(out)
            assert equivalent_networks(net, out), seed


def _reference_extract():
    net = BooleanNetwork()
    for name in ("a", "b", "c", "d", "e"):
        net.add_input(name)
    net.add_node("f", BooleanFunction.parse("a c + a d"))
    net.add_node("g", BooleanFunction.parse("b c + b d + e"))
    net.add_output("f")
    net.add_output("g")
    return net


class TestExtractCubes:
    def test_extracts_shared_cube(self):
        # ab occurs three times: extraction saves literals (at two
        # occurrences it is cost-neutral and correctly skipped).
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a b c"))
        net.add_node("g", BooleanFunction.parse("a b d"))
        net.add_node("h", BooleanFunction.parse("a b c' + d"))
        net.add_output("f")
        net.add_output("g")
        net.add_output("h")
        created = extract_cubes(net)
        assert created >= 1
        assert equivalent_networks(net, _reference_cubes())

    def test_neutral_pair_not_extracted(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c", "d"):
            net.add_input(name)
        net.add_node("f", BooleanFunction.parse("a b c"))
        net.add_node("g", BooleanFunction.parse("a b d"))
        net.add_output("f")
        net.add_output("g")
        assert extract_cubes(net) == 0

    def test_equivalence_fuzz(self):
        for seed in range(10):
            net = random_network(seed + 200)
            out = net.copy()
            extract_cubes(out)
            assert equivalent_networks(net, out), seed


def _reference_cubes():
    net = BooleanNetwork()
    for name in ("a", "b", "c", "d"):
        net.add_input(name)
    net.add_node("f", BooleanFunction.parse("a b c"))
    net.add_node("g", BooleanFunction.parse("a b d"))
    net.add_node("h", BooleanFunction.parse("a b c' + d"))
    net.add_output("f")
    net.add_output("g")
    net.add_output("h")
    return net


class TestResubstitute:
    def test_reuses_existing_divisor(self):
        net = BooleanNetwork()
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_node("d", BooleanFunction.parse("a + b"))
        net.add_node("f", BooleanFunction.parse("a c + b c"))
        net.add_output("d")
        net.add_output("f")
        hits = resubstitute(net)
        assert hits >= 1
        assert "d" in net.function("f").variables

    def test_equivalence_fuzz(self):
        for seed in range(10):
            net = random_network(seed + 250)
            out = net.copy()
            resubstitute(out)
            assert equivalent_networks(net, out), seed


class TestDivideFunctions:
    def test_rewrites_with_divisor_name(self):
        f = BooleanFunction.parse("a c + b c + d")
        d = BooleanFunction.parse("a + b")
        out = divide_functions(f, d, "k")
        assert out is not None
        assert "k" in out.variables
        # k c + d
        assert out.num_literals == 3

    def test_returns_none_without_gain(self):
        f = BooleanFunction.parse("a")
        d = BooleanFunction.parse("b + c")
        assert divide_functions(f, d, "k") is None


class TestDecompose:
    def test_bounded_fanin(self):
        net = random_network(301, npi=8, nnodes=8)
        out = net.copy()
        decompose(out, max_fanin=3)
        for node in out.node_names:
            assert len(out.fanins(node)) <= 3
        assert equivalent_networks(net, out)

    def test_simple_gate_shape(self):
        net = random_network(302)
        out = net.copy()
        decompose(out, max_fanin=4)
        for node in out.node_names:
            func = out.function(node)
            single_cube = func.num_cubes <= 1
            or_shape = all(c.num_literals == 1 for c in func.cover.cubes)
            assert single_cube or or_shape, (node, func)

    def test_inverter_gates_mode(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", BooleanFunction.parse("a' b"))
        net.add_output("f")
        reference = net.copy()
        decompose(net, max_fanin=3, inverter_gates=True)
        assert equivalent_networks(reference, net)
        # Every gate now reads only positive literals.
        for node in net.node_names:
            func = net.function(node)
            if func.num_cubes == 1 and func.num_literals == 1:
                continue  # the inverter itself
            for cube in func.cover.cubes:
                assert cube.neg == 0, (node, func)

    def test_inverters_shared(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_input("c")
        net.add_node("f", BooleanFunction.parse("a' b"))
        net.add_node("g", BooleanFunction.parse("a' c"))
        net.add_output("f")
        net.add_output("g")
        decompose(net, max_fanin=3, inverter_gates=True)
        inverters = [
            n
            for n in net.node_names
            if net.function(n).num_cubes == 1
            and net.function(n).cover.cubes[0].neg
        ]
        assert len(inverters) == 1  # a' created once, shared

    def test_equivalence_fuzz(self):
        for seed in range(10):
            net = random_network(seed + 300)
            for fanin in (0, 2, 4):
                out = net.copy()
                decompose(out, max_fanin=fanin, inverter_gates=seed % 2 == 0)
                assert equivalent_networks(net, out), (seed, fanin)


class TestCollapseNetwork:
    def test_flattens_to_two_levels(self):
        net = random_network(400, npi=6, nnodes=8)
        flat = collapse_network(net)
        assert flat.depth() <= 1
        assert equivalent_networks(net, flat)

    def test_po_aliasing_input(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_output("a")
        flat = collapse_network(net)
        assert flat.outputs == ("a",)
