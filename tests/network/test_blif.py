"""Unit tests for the BLIF reader/writer."""

import pytest

from repro.errors import BlifError
from repro.io.blif import parse_blif, read_blif, to_blif, write_blif
from repro.network.simulate import equivalent_networks
from tests.conftest import MOTIVATIONAL_BLIF, random_network


class TestParsing:
    def test_motivational_network(self):
        net = parse_blif(MOTIVATIONAL_BLIF)
        assert net.name == "motivational"
        assert len(net.inputs) == 7
        assert net.outputs == ("f",)
        assert net.num_nodes == 7

    def test_comments_stripped(self):
        net = parse_blif(
            ".model m # comment\n.inputs a # more\n.outputs f\n"
            ".names a f # gate\n1 1\n.end\n"
        )
        assert net.evaluate({"a": 1}) == {"f": True}

    def test_line_continuation(self):
        net = parse_blif(
            ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        )
        assert len(net.inputs) == 2

    def test_constant_one_node(self):
        net = parse_blif(".model m\n.inputs a\n.outputs k\n.names k\n1\n.end\n")
        assert net.evaluate({"a": 0}) == {"k": True}

    def test_constant_zero_node(self):
        net = parse_blif(".model m\n.inputs a\n.outputs k\n.names k\n.end\n")
        assert net.evaluate({"a": 0}) == {"k": False}

    def test_offset_rows_complemented(self):
        # Defining f by its OFF-set: f == NOT(a) here.
        net = parse_blif(
            ".model m\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n"
        )
        assert net.evaluate({"a": 0}) == {"f": True}
        assert net.evaluate({"a": 1}) == {"f": False}

    def test_dont_care_rows(self):
        net = parse_blif(
            ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n1-1 1\n01- 1\n.end\n"
        )
        assert net.evaluate({"a": 1, "b": 0, "c": 1}) == {"f": True}
        assert net.evaluate({"a": 0, "b": 1, "c": 0}) == {"f": True}
        assert net.evaluate({"a": 0, "b": 0, "c": 0}) == {"f": False}


class TestErrors:
    def test_latch_rejected(self):
        with pytest.raises(BlifError) as err:
            parse_blif(".model m\n.latch a b\n.end\n")
        assert "latch" in str(err.value)

    def test_mixed_on_off_rows_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(
                ".model m\n.inputs a b\n.outputs f\n"
                ".names a b f\n11 1\n00 0\n.end\n"
            )

    def test_bad_row_width(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n")

    def test_bad_characters(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\nx 1\n.end\n")

    def test_row_outside_names(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a\n1 1\n.end\n")

    def test_undefined_output(self):
        with pytest.raises(Exception):
            parse_blif(".model m\n.inputs a\n.outputs zz\n.end\n")

    def test_duplicate_fanin(self):
        with pytest.raises(BlifError):
            parse_blif(
                ".model m\n.inputs a\n.outputs f\n.names a a f\n11 1\n.end\n"
            )

    def test_line_numbers_in_errors(self):
        with pytest.raises(BlifError) as err:
            parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\nzz 1\n.end\n")
        assert err.value.line_number == 5


class TestRoundtrip:
    def test_motivational_roundtrip(self):
        net = parse_blif(MOTIVATIONAL_BLIF)
        again = parse_blif(to_blif(net))
        assert equivalent_networks(net, again)

    def test_random_roundtrip(self):
        for seed in range(10):
            net = random_network(seed + 600)
            again = parse_blif(to_blif(net))
            assert equivalent_networks(net, again), seed

    def test_file_roundtrip(self, tmp_path):
        net = random_network(610)
        path = tmp_path / "net.blif"
        write_blif(net, path)
        again = read_blif(path)
        assert again.name == net.name  # .model line wins over the filename
        assert equivalent_networks(net, again)
