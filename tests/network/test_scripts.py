"""Unit tests for the script pipelines (SIS stand-ins)."""

from repro.network.scripts import (
    prepare_one_to_one,
    prepare_tels,
    script_algebraic,
    script_boolean,
)
from repro.network.simulate import equivalent_networks
from tests.conftest import random_network


class TestScriptAlgebraic:
    def test_preserves_function(self, motivational_network):
        out = script_algebraic(motivational_network)
        assert equivalent_networks(motivational_network, out)

    def test_reduces_literals_fuzz(self):
        for seed in range(12):
            net = random_network(seed + 500)
            out = script_algebraic(net)
            assert equivalent_networks(net, out), seed
            assert out.num_literals() <= net.num_literals() + 2, seed

    def test_output_names_preserved(self):
        net = random_network(510)
        out = script_algebraic(net)
        assert out.outputs == net.outputs


class TestScriptBoolean:
    def test_preserves_function_fuzz(self):
        for seed in range(12):
            net = random_network(seed + 520)
            out = script_boolean(net)
            assert equivalent_networks(net, out), seed

    def test_never_more_literals_than_algebraic_much(self):
        for seed in range(6):
            net = random_network(seed + 530)
            alg = script_algebraic(net)
            boo = script_boolean(net)
            assert boo.num_literals() <= alg.num_literals() + 4


class TestPrepareOneToOne:
    def test_bounded_fanin_simple_gates(self):
        net = random_network(540)
        out = prepare_one_to_one(net, max_fanin=3)
        assert equivalent_networks(net, out)
        for node in out.node_names:
            func = out.function(node)
            assert func.nvars <= 3
            single_cube = func.num_cubes <= 1
            or_shape = all(c.num_literals == 1 for c in func.cover.cubes)
            assert single_cube or or_shape

    def test_inverter_gates_default(self):
        net = random_network(541)
        out = prepare_one_to_one(net, max_fanin=3)
        for node in out.node_names:
            func = out.function(node)
            if func.nvars == 1 and func.num_cubes == 1:
                continue  # inverter or buffer
            for cube in func.cover.cubes:
                assert cube.neg == 0, (node, func)


class TestPrepareTels:
    def test_preserves_function_fuzz(self):
        for seed in range(8):
            net = random_network(seed + 550)
            out = prepare_tels(net)
            assert equivalent_networks(net, out), seed

    def test_fine_granularity(self):
        net = random_network(560)
        out = prepare_tels(net)
        for node in out.node_names:
            func = out.function(node)
            single_cube = func.num_cubes <= 1
            or_shape = all(c.num_literals == 1 for c in func.cover.cubes)
            assert single_cube or or_shape
