"""Unit tests for the exact rational simplex (LP relaxation)."""

from fractions import Fraction

from repro.ilp.model import IlpProblem, Status
from repro.ilp.simplex import solve_lp


def make(num_vars, objective, rows):
    p = IlpProblem(num_vars=num_vars, objective=objective)
    for coeffs, sense, rhs in rows:
        p.add_constraint(coeffs, sense, rhs)
    return p


class TestBasicLps:
    def test_simple_minimization(self):
        # min x+y s.t. x+y >= 2, x >= 0, y >= 0  => 2
        p = make(2, [1, 1], [([1, 1], ">=", 2)])
        r = solve_lp(p)
        assert r.status is Status.OPTIMAL
        assert r.objective == 2

    def test_fractional_optimum(self):
        # min x  s.t. 2x >= 1 => x = 1/2
        p = make(1, [1], [([2], ">=", 1)])
        r = solve_lp(p)
        assert r.objective == Fraction(1, 2)

    def test_equality_constraints(self):
        p = make(2, [1, 2], [([1, 1], "==", 4), ([1, 0], "<=", 3)])
        r = solve_lp(p)
        assert r.status is Status.OPTIMAL
        # Minimize x + 2y with x+y=4, x<=3: best x=3, y=1 -> 5.
        assert r.objective == 5

    def test_negative_rhs_normalization(self):
        # -x <= -2  <=>  x >= 2
        p = make(1, [1], [([-1], "<=", -2)])
        r = solve_lp(p)
        assert r.objective == 2

    def test_degenerate_redundant_constraints(self):
        p = make(2, [1, 1], [
            ([1, 1], ">=", 2),
            ([2, 2], ">=", 4),  # same halfspace, scaled
            ([1, 1], "<=", 10),
        ])
        r = solve_lp(p)
        assert r.objective == 2


class TestInfeasibleUnbounded:
    def test_infeasible(self):
        p = make(1, [1], [([1], ">=", 3), ([1], "<=", 1)])
        assert solve_lp(p).status is Status.INFEASIBLE

    def test_unbounded(self):
        p = make(1, [-1], [([1], ">=", 0)])
        assert solve_lp(p).status is Status.UNBOUNDED

    def test_bounded_despite_negative_objective(self):
        p = make(1, [-1], [([1], "<=", 7)])
        r = solve_lp(p)
        assert r.objective == -7

    def test_zero_equality_infeasible(self):
        p = make(2, [0, 0], [([1, 1], "==", -1)])
        # x,y >= 0 cannot sum to -1.
        assert solve_lp(p).status is Status.INFEASIBLE


class TestExactness:
    def test_rational_exactness_no_drift(self):
        # min x s.t. 3x >= 1: answer exactly 1/3 (floats would drift).
        p = make(1, [1], [([3], ">=", 1)])
        r = solve_lp(p)
        assert r.values[0] == Fraction(1, 3)

    def test_solution_satisfies_all_constraints(self):
        p = make(3, [1, 1, 1], [
            ([1, 1, 0], ">=", 2),
            ([0, 1, 1], ">=", 2),
            ([1, 0, 1], ">=", 2),
        ])
        r = solve_lp(p)
        assert r.status is Status.OPTIMAL
        assert p.is_feasible_point(r.values)
        assert r.objective == 3  # symmetric LP optimum x=y=z=1


class TestExtraConstraints:
    def test_extra_constraints_do_not_mutate_problem(self):
        from repro.ilp.model import Constraint, Sense

        p = make(1, [1], [([1], ">=", 1)])
        cut = Constraint((Fraction(1),), Sense.GE, Fraction(5))
        r1 = solve_lp(p, [cut])
        assert r1.objective == 5
        assert len(p.constraints) == 1
        r2 = solve_lp(p)
        assert r2.objective == 1
