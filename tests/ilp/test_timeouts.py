"""Wall-clock budgets through the solver stack, and solver-site chaos."""

from __future__ import annotations

from repro.faults.injector import CHAOS_ENV
from repro.ilp.backends import SolveAttempt, SolveInfo, get_backend
from repro.ilp.branch_bound import solve_bb
from repro.ilp.model import IlpProblem, Status
from repro.ilp.solve import solve_ilp_info


def branching_problem() -> IlpProblem:
    """min x s.t. 2x >= 1, x integer: the relaxation is fractional, so the
    solve cannot finish at the root node — a zero budget must trip."""
    p = IlpProblem(num_vars=1, objective=[1])
    p.add_constraint([2], ">=", 1)
    return p


class TestBranchBoundTimeLimit:
    def test_zero_budget_is_declared_not_proven(self):
        result = solve_bb(branching_problem(), time_limit_s=0.0)
        assert result.timed_out
        assert result.limit_hit
        assert result.status is Status.INFEASIBLE

    def test_ample_budget_solves_normally(self):
        result = solve_bb(branching_problem(), time_limit_s=60.0)
        assert result.status is Status.OPTIMAL
        assert not result.timed_out
        assert result.int_values() == (1,)

    def test_no_budget_means_no_timeout_flag(self):
        result = solve_bb(branching_problem())
        assert result.status is Status.OPTIMAL
        assert not result.timed_out


class TestDispatchTimeout:
    def test_exact_backend_reports_timeout_in_info(self):
        result, info = solve_ilp_info(
            branching_problem(),
            backend="exact",
            presolve=False,
            timeout_s=0.0,
        )
        assert info.timed_out
        assert result.status is Status.INFEASIBLE
        assert any(a.timed_out for a in info.attempts)

    def test_untimed_solve_has_clean_info(self):
        result, info = solve_ilp_info(
            branching_problem(), backend="exact", presolve=False
        )
        assert result.status is Status.OPTIMAL
        assert not info.timed_out

    def test_info_timed_out_aggregates_attempts(self):
        info = SolveInfo()
        info.attempts.append(
            SolveAttempt(backend="scipy", status=Status.INFEASIBLE,
                         wall_s=0.0, timed_out=True)
        )
        info.attempts.append(
            SolveAttempt(backend="exact", status=Status.OPTIMAL, wall_s=0.0)
        )
        assert info.timed_out


class TestSolverChaos:
    def test_injected_timeout_falls_back_to_exact(self, monkeypatch):
        if not get_backend("scipy").available():
            import pytest

            pytest.skip("solver chaos perturbs the scipy attempt")
        monkeypatch.setenv(CHAOS_ENV, "solver=1.0:0")
        result, info = solve_ilp_info(branching_problem(), backend="auto")
        assert result.status is Status.OPTIMAL
        assert result.int_values() == (1,)
        assert info.fallback
        assert info.backend == "exact"
        assert info.timed_out  # the synthetic scipy attempt is recorded
        assert info.attempts[0].backend == "scipy"
        assert info.attempts[0].timed_out

    def test_injected_wrong_answer_is_re_proved(self, monkeypatch):
        if not get_backend("scipy").available():
            import pytest

            pytest.skip("solver chaos perturbs the scipy attempt")
        monkeypatch.setenv(CHAOS_ENV, "solver-wrong=1.0:0")
        result, info = solve_ilp_info(branching_problem(), backend="auto")
        # Whatever corruption the harness injected, the verification chain
        # must hand back a correct, verified answer.
        assert result.status is Status.OPTIMAL
        assert result.int_values() == (1,)
        assert info.verified
