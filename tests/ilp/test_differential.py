"""Differential test: fast path vs exact ILP vs scipy on random unate covers.

The acceptance bar for the solver-stack refactor: on hundreds of randomized
unate covers, (a) the Chow fast path, the exact backend, and the scipy
backend agree on feasibility, and (b) every accepted weight–threshold
vector satisfies every ON/OFF inequality — checked here in the strongest
form, point by point over the full truth table with the defect tolerances.
"""

import random

import pytest

from repro.boolean.cover import Cover
from repro.core.identify import ThresholdChecker
from repro.ilp.scipy_backend import have_scipy

NUM_COVERS = 520
#: Support sizes, skewed small (ILP width = support + 1) but reaching 10.
SIZE_POOL = [2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 6, 6, 7, 8, 9, 10]


def _random_unate_cover(rng: random.Random) -> Cover:
    """A random unate cover: positive rows, then a random phase per var."""
    nvars = rng.choice(SIZE_POOL)
    flip = [rng.random() < 0.4 for _ in range(nvars)]
    rows = []
    for _ in range(rng.randint(1, 5)):
        row = []
        for var in range(nvars):
            lit = rng.choice("1--")
            if lit == "1" and flip[var]:
                lit = "0"
            row.append(lit)
        rows.append("".join(row))
    return Cover.from_strings(rows)


def _assert_vector_separates(cover, vec, delta_on, delta_off, context):
    """Every true point clears T + delta_on; every false point stays below."""
    for point in range(1 << cover.nvars):
        sum_w = sum(
            w for i, w in enumerate(vec.weights) if (point >> i) & 1
        )
        if cover.evaluate(point):
            assert sum_w >= vec.threshold + delta_on, (context, point)
        else:
            assert sum_w <= vec.threshold - delta_off, (context, point)


class TestDifferential:
    def _checkers(self):
        configs = {
            "fastpath": ThresholdChecker(use_fastpath=True, backend="exact"),
            "exact": ThresholdChecker(use_fastpath=False, backend="exact"),
        }
        if have_scipy():
            configs["scipy"] = ThresholdChecker(
                use_fastpath=False, backend="scipy"
            )
        return configs

    def test_feasibility_agreement_and_inequalities(self):
        rng = random.Random(20260805)
        checkers = self._checkers()
        accepted = 0
        rejected = 0
        for index in range(NUM_COVERS):
            cover = _random_unate_cover(rng)
            results = {
                name: checker.check(cover)
                for name, checker in checkers.items()
            }
            verdicts = {name: r is not None for name, r in results.items()}
            assert len(set(verdicts.values())) == 1, (index, cover, verdicts)
            if results["fastpath"] is None:
                rejected += 1
                continue
            accepted += 1
            for name, vec in results.items():
                _assert_vector_separates(
                    cover, vec, delta_on=0, delta_off=1,
                    context=(index, name, cover),
                )
        # The distribution must actually exercise both outcomes.
        assert accepted >= 50
        assert rejected >= 50

    def test_fastpath_hits_match_ilp_optimum(self):
        """Where the fast path answers, its vector has the ILP's objective."""
        rng = random.Random(99)
        fast = ThresholdChecker(use_fastpath=True, backend="exact")
        slow = ThresholdChecker(use_fastpath=False, backend="exact")
        compared = 0
        for _ in range(120):
            cover = _random_unate_cover(rng)
            a = fast.check(cover)
            b = slow.check(cover)
            assert (a is None) == (b is None), cover
            if a is None:
                continue
            compared += 1
            obj_a = sum(abs(w) for w in a.weights) + a.to_positive_threshold()
            obj_b = sum(abs(w) for w in b.weights) + b.to_positive_threshold()
            assert obj_a == obj_b, (cover, a, b)
        assert compared >= 20

    @pytest.mark.parametrize("max_weight", [1, 2])
    def test_bounded_agreement(self, max_weight):
        """max_weight verdicts agree between the fast path and the ILP."""
        rng = random.Random(max_weight)
        fast = ThresholdChecker(
            use_fastpath=True, backend="exact", max_weight=max_weight
        )
        slow = ThresholdChecker(
            use_fastpath=False, backend="exact", max_weight=max_weight
        )
        for index in range(100):
            cover = _random_unate_cover(rng)
            a = fast.check(cover)
            b = slow.check(cover)
            assert (a is None) == (b is None), (index, cover)
            if a is not None:
                assert all(abs(w) <= max_weight for w in a.weights)
                _assert_vector_separates(
                    cover, a, 0, 1, (index, cover)
                )
