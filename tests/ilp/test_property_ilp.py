"""Hypothesis property tests for the ILP substrate."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.branch_bound import solve_bb
from repro.ilp.model import IlpProblem, Status
from repro.ilp.simplex import solve_lp


@st.composite
def problems(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    objective = draw(
        st.lists(
            st.integers(min_value=0, max_value=5), min_size=n, max_size=n
        )
    )
    p = IlpProblem(num_vars=n, objective=objective)
    m = draw(st.integers(min_value=1, max_value=5))
    for _ in range(m):
        coeffs = draw(
            st.lists(
                st.integers(min_value=-3, max_value=3),
                min_size=n,
                max_size=n,
            )
        )
        sense = draw(st.sampled_from(["<=", ">=", "=="]))
        rhs = draw(st.integers(min_value=-5, max_value=8))
        p.add_constraint(coeffs, sense, rhs)
    return p


@settings(max_examples=150, deadline=None)
@given(problems())
def test_lp_optimal_solutions_are_feasible(p):
    r = solve_lp(p)
    if r.status is Status.OPTIMAL:
        assert p.is_feasible_point(r.values)
        assert r.objective == p.objective_value(r.values)


@settings(max_examples=100, deadline=None)
@given(problems())
def test_ilp_optimal_solutions_are_integral_and_feasible(p):
    r = solve_bb(p, node_limit=250)
    if r.status is Status.OPTIMAL:
        assert p.is_feasible_point(r.values)
        for flag, v in zip(p.integer, r.values):
            if flag:
                assert v.denominator == 1


@settings(max_examples=100, deadline=None)
@given(problems())
def test_relaxation_bounds_the_ilp(p):
    lp = solve_lp(p)
    ilp = solve_bb(p, node_limit=250)
    if lp.status is Status.OPTIMAL and ilp.status is Status.OPTIMAL:
        # With non-negative objectives, minimization: LP optimum <= ILP.
        assert lp.objective <= ilp.objective
    if lp.status is Status.INFEASIBLE:
        assert ilp.status is Status.INFEASIBLE


@st.composite
def tiny_problems(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    objective = draw(
        st.lists(st.integers(min_value=0, max_value=4), min_size=n, max_size=n)
    )
    p = IlpProblem(num_vars=n, objective=objective)
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        coeffs = draw(
            st.lists(
                st.integers(min_value=-3, max_value=3), min_size=n, max_size=n
            )
        )
        p.add_constraint(
            coeffs,
            draw(st.sampled_from(["<=", ">="])),
            draw(st.integers(min_value=-4, max_value=6)),
        )
    return p


@settings(max_examples=30, deadline=None)
@given(tiny_problems())
def test_ilp_answer_matches_small_box_enumeration(p):
    """Exhaustively enumerate integer points in a small box as ground truth."""
    r = solve_bb(p)
    n = p.num_vars
    best = None
    # Points with coordinates in 0..4 (covers most tiny instances' optima);
    # kept small — this is Fraction arithmetic over 5**n points per example.
    def points(prefix):
        if len(prefix) == n:
            yield tuple(prefix)
            return
        for v in range(5):
            yield from points(prefix + [v])

    for point in points([]):
        xs = [Fraction(v) for v in point]
        if p.is_feasible_point(xs):
            value = p.objective_value(xs)
            if best is None or value < best:
                best = value
    if r.status is Status.OPTIMAL and best is not None:
        # The solver may find optima outside the box, never worse ones.
        assert r.objective <= best
