"""Backend dispatch, registry, and verification-chain tests."""

import random
from fractions import Fraction

import pytest

from repro.errors import IlpError
from repro.ilp import backends as backends_mod
from repro.ilp.backends import (
    get_backend,
    register_backend,
    registered_backends,
)
from repro.ilp.model import IlpProblem, IlpResult, Status
from repro.ilp.scipy_backend import have_scipy, solve_scipy
from repro.ilp.solve import available_backends, solve_ilp, solve_ilp_info

needs_scipy = pytest.mark.skipif(not have_scipy(), reason="scipy missing")


class _FakeBackend:
    """A scriptable backend for testing the dispatch layer's verification."""

    def __init__(self, name, result):
        self.name = name
        self.result = result
        self.calls = 0

    def available(self):
        return True

    def solve(self, problem, warm_start=None):
        self.calls += 1
        return self.result


def _simple_problem() -> IlpProblem:
    """min x0 + x1 s.t. x0 + x1 >= 3: optimum 3."""
    p = IlpProblem(num_vars=2, objective=[1, 1])
    p.add_constraint([1, 1], ">=", 3)
    return p


class TestDispatch:
    def test_available_backends_contains_exact(self):
        assert "exact" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(IlpError):
            solve_ilp(IlpProblem(num_vars=1), backend="cplex")

    def test_scipy_requested_but_missing_behaviour(self):
        if have_scipy():
            r = solve_ilp(IlpProblem(num_vars=1, objective=[1]), backend="scipy")
            assert r.status is Status.OPTIMAL
        else:
            with pytest.raises(IlpError):
                solve_ilp(IlpProblem(num_vars=1), backend="scipy")

    def test_exact_backend_trivial(self):
        r = solve_ilp(IlpProblem(num_vars=2, objective=[1, 1]), backend="exact")
        assert r.status is Status.OPTIMAL
        assert r.objective == 0


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = registered_backends()
        assert "exact" in names
        assert "scipy" in names  # registered even when unavailable

    def test_available_is_subset_of_registered(self):
        assert set(available_backends()) <= set(registered_backends())

    def test_reserved_and_empty_names_rejected(self):
        with pytest.raises(IlpError):
            register_backend(_FakeBackend("auto", None))
        with pytest.raises(IlpError):
            register_backend(_FakeBackend("", None))

    def test_unknown_name_lists_registered(self):
        with pytest.raises(IlpError, match="exact"):
            get_backend("gurobi")

    def test_registered_backend_reachable_through_dispatch(self, monkeypatch):
        stub = _FakeBackend(
            "stub",
            IlpResult(
                Status.OPTIMAL,
                Fraction(3),
                (Fraction(3), Fraction(0)),
            ),
        )
        monkeypatch.setitem(backends_mod._REGISTRY, "stub", stub)
        result, info = solve_ilp_info(_simple_problem(), backend="stub")
        assert stub.calls == 1
        assert result.status is Status.OPTIMAL
        assert info.backend == "stub"
        assert info.verified


class TestVerificationChain:
    def test_corrupt_scipy_optimal_falls_back_to_exact(self, monkeypatch):
        # An "OPTIMAL" point violating the model must never be returned:
        # the auto chain re-solves with the exact backend.
        fake = _FakeBackend(
            "scipy",
            IlpResult(
                Status.OPTIMAL,
                Fraction(0),
                (Fraction(0), Fraction(0)),
            ),
        )
        monkeypatch.setitem(backends_mod._REGISTRY, "scipy", fake)
        result, info = solve_ilp_info(_simple_problem(), backend="auto")
        assert fake.calls == 1
        assert result.status is Status.OPTIMAL
        assert result.objective == 3
        assert info.fallback
        assert info.backend == "exact"
        assert info.verified
        assert info.solves_for("scipy") == 1
        assert info.solves_for("exact") >= 1

    def test_scipy_infeasible_is_reproved_by_exact(self, monkeypatch):
        # A float INFEASIBLE on a feasible model must be overturned.
        fake = _FakeBackend("scipy", IlpResult(Status.INFEASIBLE))
        monkeypatch.setitem(backends_mod._REGISTRY, "scipy", fake)
        result, info = solve_ilp_info(_simple_problem(), backend="auto")
        assert result.status is Status.OPTIMAL
        assert result.objective == 3
        assert info.fallback
        assert info.backend == "exact"

    def test_named_backend_corrupt_optimal_raises(self, monkeypatch):
        fake = _FakeBackend(
            "liar",
            IlpResult(
                Status.OPTIMAL,
                Fraction(0),
                (Fraction(0), Fraction(0)),
            ),
        )
        monkeypatch.setitem(backends_mod._REGISTRY, "liar", fake)
        with pytest.raises(IlpError, match="violating"):
            solve_ilp(_simple_problem(), backend="liar")

    def test_fractional_scipy_point_is_rounded_and_accepted(self, monkeypatch):
        # Float noise on an integral optimum is repaired, not rejected.
        fake = _FakeBackend(
            "scipy",
            IlpResult(
                Status.OPTIMAL,
                Fraction(3),
                (Fraction(2999999, 1000000), Fraction(1, 1000000)),
            ),
        )
        monkeypatch.setitem(backends_mod._REGISTRY, "scipy", fake)
        result, info = solve_ilp_info(_simple_problem(), backend="auto")
        assert result.status is Status.OPTIMAL
        assert result.int_values() == (3, 0)
        assert not info.fallback
        assert info.backend == "scipy"

    def test_presolve_settles_infeasible_without_backends(self):
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([1, 1], "<=", -1)
        result, info = solve_ilp_info(p, backend="auto")
        assert result.status is Status.INFEASIBLE
        assert info.backend == "presolve"
        assert info.verified
        assert info.attempts == []


@needs_scipy
class TestAgreement:
    def _random_problem(self, rng):
        n = rng.randint(1, 4)
        p = IlpProblem(
            num_vars=n, objective=[rng.randint(0, 4) for _ in range(n)]
        )
        for _ in range(rng.randint(1, 5)):
            p.add_constraint(
                [rng.randint(-3, 3) for _ in range(n)],
                rng.choice(["<=", ">=", "=="]),
                rng.randint(-4, 6),
            )
        return p

    def test_feasibility_agreement_fuzz(self):
        rng = random.Random(0)
        limit_hits = 0
        for _ in range(120):
            p = self._random_problem(rng)
            exact = solve_ilp(p, backend="exact")
            auto = solve_ilp(p, backend="auto")
            if exact.limit_hit:
                # Node budget exhausted: the exact answer is a declared
                # (not proven) infeasibility — the paper's Section V-E
                # semantics — so there is nothing to compare.
                limit_hits += 1
                continue
            if exact.status is Status.OPTIMAL and auto.status is Status.OPTIMAL:
                assert exact.objective == auto.objective
            elif Status.INFEASIBLE in (exact.status, auto.status):
                assert exact.status == auto.status
        # The budget should only rarely trip on this distribution.
        assert limit_hits <= 6

    def test_scipy_solutions_verified(self):
        rng = random.Random(1)
        for _ in range(60):
            p = self._random_problem(rng)
            r = solve_scipy(p)
            if r.status is Status.OPTIMAL:
                assert p.is_feasible_point(r.values)

    def test_auto_double_checks_infeasible(self):
        # A problem where float rounding could matter: the auto path must
        # agree with the exact answer.
        p = IlpProblem(num_vars=1, objective=[1])
        p.add_constraint([3], "==", 1)  # 3x == 1: LP-feasible, ILP-infeasible
        assert solve_ilp(p, backend="auto").status is Status.INFEASIBLE
