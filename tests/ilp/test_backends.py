"""Backend dispatch and scipy/HiGHS agreement tests."""

import random

import pytest

from repro.errors import IlpError
from repro.ilp.model import IlpProblem, Status
from repro.ilp.scipy_backend import have_scipy, solve_scipy
from repro.ilp.solve import available_backends, solve_ilp

needs_scipy = pytest.mark.skipif(not have_scipy(), reason="scipy missing")


class TestDispatch:
    def test_available_backends_contains_exact(self):
        assert "exact" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(IlpError):
            solve_ilp(IlpProblem(num_vars=1), backend="cplex")

    def test_scipy_requested_but_missing_behaviour(self):
        if have_scipy():
            r = solve_ilp(IlpProblem(num_vars=1, objective=[1]), backend="scipy")
            assert r.status is Status.OPTIMAL
        else:
            with pytest.raises(IlpError):
                solve_ilp(IlpProblem(num_vars=1), backend="scipy")

    def test_exact_backend_trivial(self):
        r = solve_ilp(IlpProblem(num_vars=2, objective=[1, 1]), backend="exact")
        assert r.status is Status.OPTIMAL
        assert r.objective == 0


@needs_scipy
class TestAgreement:
    def _random_problem(self, rng):
        n = rng.randint(1, 4)
        p = IlpProblem(
            num_vars=n, objective=[rng.randint(0, 4) for _ in range(n)]
        )
        for _ in range(rng.randint(1, 5)):
            p.add_constraint(
                [rng.randint(-3, 3) for _ in range(n)],
                rng.choice(["<=", ">=", "=="]),
                rng.randint(-4, 6),
            )
        return p

    def test_feasibility_agreement_fuzz(self):
        rng = random.Random(0)
        limit_hits = 0
        for _ in range(120):
            p = self._random_problem(rng)
            exact = solve_ilp(p, backend="exact")
            auto = solve_ilp(p, backend="auto")
            if exact.limit_hit:
                # Node budget exhausted: the exact answer is a declared
                # (not proven) infeasibility — the paper's Section V-E
                # semantics — so there is nothing to compare.
                limit_hits += 1
                continue
            if exact.status is Status.OPTIMAL and auto.status is Status.OPTIMAL:
                assert exact.objective == auto.objective
            elif Status.INFEASIBLE in (exact.status, auto.status):
                assert exact.status == auto.status
        # The budget should only rarely trip on this distribution.
        assert limit_hits <= 6

    def test_scipy_solutions_verified(self):
        rng = random.Random(1)
        for _ in range(60):
            p = self._random_problem(rng)
            r = solve_scipy(p)
            if r.status is Status.OPTIMAL:
                assert p.is_feasible_point(r.values)

    def test_auto_double_checks_infeasible(self):
        # A problem where float rounding could matter: the auto path must
        # agree with the exact answer.
        p = IlpProblem(num_vars=1, objective=[1])
        p.add_constraint([3], "==", 1)  # 3x == 1: LP-feasible, ILP-infeasible
        assert solve_ilp(p, backend="auto").status is Status.INFEASIBLE
