"""Unit tests for the ILP model layer."""

from fractions import Fraction

import pytest

from repro.errors import IlpError
from repro.ilp.model import Constraint, IlpProblem, IlpResult, Sense, Status


class TestProblemConstruction:
    def test_defaults(self):
        p = IlpProblem(num_vars=3)
        assert p.objective == [Fraction(0)] * 3
        assert p.integer == [True, True, True]
        assert p.names == ["x0", "x1", "x2"]

    def test_float_coefficients_become_fractions(self):
        p = IlpProblem(num_vars=1, objective=[0.5])
        assert p.objective[0] == Fraction(1, 2)

    def test_objective_length_checked(self):
        with pytest.raises(IlpError):
            IlpProblem(num_vars=2, objective=[1])

    def test_negative_num_vars_rejected(self):
        with pytest.raises(IlpError):
            IlpProblem(num_vars=-1)

    def test_add_constraint_validates_width(self):
        p = IlpProblem(num_vars=2)
        with pytest.raises(IlpError):
            p.add_constraint([1], "<=", 0)

    def test_add_constraint_accepts_string_sense(self):
        p = IlpProblem(num_vars=1)
        p.add_constraint([1], ">=", 2)
        assert p.constraints[0].sense is Sense.GE


class TestFeasibility:
    def test_is_feasible_point(self):
        p = IlpProblem(num_vars=2)
        p.add_constraint([1, 1], "<=", 3)
        p.add_constraint([1, 0], ">=", 1)
        assert p.is_feasible_point([1, 2])
        assert not p.is_feasible_point([0, 0])
        assert not p.is_feasible_point([-1, 0])  # nonnegativity

    def test_equality_sense(self):
        c = Constraint((Fraction(1),), Sense.EQ, Fraction(2))
        assert c.evaluate([Fraction(2)])
        assert not c.evaluate([Fraction(1)])

    def test_objective_value(self):
        p = IlpProblem(num_vars=2, objective=[2, 3])
        assert p.objective_value([1, 1]) == 5


class TestResult:
    def test_int_values(self):
        r = IlpResult(Status.OPTIMAL, Fraction(1), (Fraction(2), Fraction(0)))
        assert r.int_values() == (2, 0)

    def test_int_values_rejects_fractional(self):
        r = IlpResult(Status.OPTIMAL, Fraction(1), (Fraction(1, 2),))
        with pytest.raises(IlpError):
            r.int_values()

    def test_int_values_without_solution(self):
        with pytest.raises(IlpError):
            IlpResult(Status.INFEASIBLE).int_values()

    def test_is_optimal(self):
        assert IlpResult(Status.OPTIMAL, Fraction(0), ()).is_optimal
        assert not IlpResult(Status.INFEASIBLE).is_optimal
