"""Tests for the Chow-parameter fast path (arXiv:2301.03667 pre-pass)."""

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.core.identify import ThresholdChecker
from repro.ilp.fastpath import (
    FastpathStatus,
    chow_parameters,
    fastpath_check,
    two_monotonicity_violation,
)


def _positive(rows) -> tuple[Cover, Cover]:
    """A positive-unate cover plus its (minimized) complement cubes."""
    from repro.boolean.minimize import minimize

    cover = minimize(Cover.from_strings(rows))
    return cover, minimize(cover.complement())


class TestChowParameters:
    def test_majority_is_fully_symmetric(self):
        cover, _ = _positive(["11-", "1-1", "-11"])
        chow = chow_parameters(cover)
        assert len(set(chow.values())) == 1

    def test_dominant_variable_ranks_first(self):
        # f = a + bc: a is true on more minterms than b or c.
        cover, _ = _positive(["1--", "-11"])
        chow = chow_parameters(cover)
        assert chow[0] > chow[1] == chow[2]


class TestTwoMonotonicity:
    def test_majority_passes(self):
        cover, _ = _positive(["11-", "1-1", "-11"])
        assert two_monotonicity_violation(cover) is None

    def test_disjoint_ands_fail(self):
        # x0 x1 + x2 x3 is the textbook non-2-monotonic unate function.
        cover, _ = _positive(["11--", "--11"])
        assert two_monotonicity_violation(cover) == (0, 2)


class TestFastpathVerdicts:
    def test_majority_hit_with_unit_weights(self):
        cover, off = _positive(["11-", "1-1", "-11"])
        result = fastpath_check(cover, off)
        assert result.status is FastpathStatus.HIT
        assert result.values == (1, 1, 1, 2)

    def test_and3_hit(self):
        cover, off = _positive(["111"])
        result = fastpath_check(cover, off)
        assert result.status is FastpathStatus.HIT
        assert result.values == (1, 1, 1, 3)

    def test_and3_hit_at_weight_box_edge(self):
        # Regression: the only feasible tuple fills the whole max_weight
        # box, so the box-exhaustion branch must return the found optimum,
        # not NOT_THRESHOLD.
        cover, off = _positive(["111"])
        result = fastpath_check(cover, off, max_weight=1)
        assert result.status is FastpathStatus.HIT
        assert result.values == (1, 1, 1, 3)

    def test_weighted_or_hit_matches_known_optimum(self):
        # Positive form of x1 x2' + x1 x3' (paper Fig. 5): optimum
        # (2, 1, 1; 3) before the phase map-back.
        cover, off = _positive(["11-", "1-1"])
        result = fastpath_check(cover, off)
        assert result.status is FastpathStatus.HIT
        assert result.values == (2, 1, 1, 3)

    def test_screen_rejects_non_2_monotonic(self):
        cover, off = _positive(["11--", "--11"])
        result = fastpath_check(cover, off)
        assert result.status is FastpathStatus.NOT_THRESHOLD
        assert result.screened

    def test_weight_box_exhaustion_proves_not_threshold(self):
        # x0 x1 + x0 x2 needs w0 = 2, so the [1,1]^3 box is infeasible.
        cover, off = _positive(["11-", "1-1"])
        result = fastpath_check(cover, off, max_weight=1)
        assert result.status is FastpathStatus.NOT_THRESHOLD
        assert not result.screened

    def test_wide_support_undecided(self):
        cover, off = _positive(["1" * 9])
        result = fastpath_check(cover, off)
        assert result.status is FastpathStatus.UNDECIDED

    def test_degenerate_tolerances_undecided(self):
        cover, off = _positive(["11-", "1-1", "-11"])
        result = fastpath_check(cover, off, delta_on=0, delta_off=0)
        assert result.status is FastpathStatus.UNDECIDED

    def test_budget_exhaustion_hands_back_candidate(self):
        # With a 3-tuple budget the search has already seen the feasible
        # (2,1,1;3) but not yet proved it optimal: the candidate comes back
        # as a warm start.
        cover, off = _positive(["11-", "1-1"])
        result = fastpath_check(cover, off, budget=3)
        assert result.status is FastpathStatus.UNDECIDED
        assert result.candidate == (2, 1, 1, 3)

    def test_zero_budget_undecided_without_candidate(self):
        cover, off = _positive(["11-", "1-1", "-11"])
        result = fastpath_check(cover, off, budget=0)
        assert result.status is FastpathStatus.UNDECIDED
        assert result.candidate is None


class TestCheckerIntegration:
    PAPER_FUNCTIONS = [
        "x1 x2' + x1 x3'",
        "x1' x2 + x3",
        "a b + a c + b c",
        "a b c",
        "a + b + c",
        "a b + a c + a d + b c d",
    ]

    def test_fastpath_reproduces_exact_ilp_vectors(self):
        for text in self.PAPER_FUNCTIONS:
            f = BooleanFunction.parse(text)
            fast = ThresholdChecker(use_fastpath=True, backend="exact")
            slow = ThresholdChecker(use_fastpath=False, backend="exact")
            assert fast.check_function(f) == slow.check_function(f), text
            assert fast.stats.fastpath_hits == 1, text
            assert fast.stats.ilp_solved == 0, text

    def test_fastpath_negative_skips_ilp(self):
        f = BooleanFunction.parse("x1 x2' + x1 x3'")
        checker = ThresholdChecker(max_weight=1)
        assert checker.check_function(f) is None
        assert checker.stats.fastpath_negatives == 1
        assert checker.stats.ilp_solved == 0

    def test_fastpath_vector_realizes_function(self):
        for text in self.PAPER_FUNCTIONS:
            f = BooleanFunction.parse(text)
            vec = ThresholdChecker().check_function(f)
            assert vec is not None, text
            cover = f.cover
            for point in range(1 << cover.nvars):
                inputs = [(point >> i) & 1 for i in range(cover.nvars)]
                assert vec.evaluate(inputs) == cover.evaluate(point), (
                    text,
                    point,
                )
