"""Tests for the exactness-preserving presolve layer."""

import random

from repro.ilp.model import IlpProblem, Status
from repro.ilp.presolve import (
    collapse_symmetric,
    expand_solution,
    presolve,
    symmetry_classes,
)
from repro.ilp.solve import solve_ilp


def _majority_like() -> IlpProblem:
    """min x0+x1+x2 s.t. every pair sums to >= 2 — fully symmetric."""
    p = IlpProblem(num_vars=3, objective=[1, 1, 1])
    p.add_constraint([1, 1, 0], ">=", 2)
    p.add_constraint([1, 0, 1], ">=", 2)
    p.add_constraint([0, 1, 1], ">=", 2)
    return p


class TestRowReductions:
    def test_duplicates_removed(self):
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([1, 1], ">=", 2)
        p.add_constraint([1, 1], ">=", 2)
        p.add_constraint([1, 1], ">=", 2)
        reduced, info = presolve(p)
        assert len(reduced.constraints) == 1
        assert info.duplicates_removed == 2
        assert info.rows_removed == 2

    def test_dominated_ge_row_dropped(self):
        # x0 + x1 >= 3 implies 2*x0 + x1 >= 2 over x >= 0.
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([1, 1], ">=", 3)
        p.add_constraint([2, 1], ">=", 2)
        reduced, info = presolve(p)
        assert info.dominated_removed == 1
        assert len(reduced.constraints) == 1
        assert reduced.constraints[0].rhs == 3

    def test_dominated_le_row_dropped(self):
        # x0 + x1 <= 2 implies x0 <= 4 over x >= 0.
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([1, 1], "<=", 2)
        p.add_constraint([1, 0], "<=", 4)
        reduced, info = presolve(p)
        assert info.dominated_removed == 1
        assert len(reduced.constraints) == 1

    def test_singleton_bounds_merged_to_tightest(self):
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([1, 0], "<=", 5)
        p.add_constraint([1, 0], "<=", 3)
        p.add_constraint([1, 0], "<=", 7)
        p.add_constraint([0, 1], ">=", 1)
        reduced, info = presolve(p)
        assert info.bounds_merged == 2
        kept = [
            c for c in reduced.constraints if c.coefficients[0] != 0
        ]
        assert len(kept) == 1
        assert kept[0].rhs == 3


class TestInfeasibilityDetection:
    def test_zero_row_infeasible(self):
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([0, 0], ">=", 1)
        reduced, info = presolve(p)
        assert info.infeasible
        # Constraints are returned untouched so a solver can certify.
        assert len(reduced.constraints) == 1

    def test_nonnegative_le_negative_infeasible(self):
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([1, 2], "<=", -1)
        _, info = presolve(p)
        assert info.infeasible

    def test_empty_bound_box_infeasible(self):
        p = IlpProblem(num_vars=1, objective=[1])
        p.add_constraint([1], "<=", 2)
        p.add_constraint([1], ">=", 3)
        _, info = presolve(p)
        assert info.infeasible

    def test_presolve_agrees_with_solver(self):
        p = IlpProblem(num_vars=1, objective=[1])
        p.add_constraint([1], "<=", 2)
        p.add_constraint([1], ">=", 3)
        assert solve_ilp(p, backend="exact").status is Status.INFEASIBLE


class TestExactness:
    def _random_problem(self, rng):
        n = rng.randint(1, 4)
        p = IlpProblem(
            num_vars=n, objective=[rng.randint(0, 4) for _ in range(n)]
        )
        for _ in range(rng.randint(1, 6)):
            p.add_constraint(
                [rng.randint(-3, 3) for _ in range(n)],
                rng.choice(["<=", ">=", "=="]),
                rng.randint(-4, 6),
            )
        return p

    def test_reduced_model_has_same_optimum_fuzz(self):
        rng = random.Random(7)
        for _ in range(100):
            p = self._random_problem(rng)
            base = solve_ilp(p, backend="exact", presolve=False)
            if base.limit_hit:
                continue
            reduced, info = presolve(p)
            if info.infeasible:
                assert base.status is Status.INFEASIBLE
                continue
            again = solve_ilp(reduced, backend="exact", presolve=False)
            assert base.status == again.status
            if base.status is Status.OPTIMAL:
                assert base.objective == again.objective


class TestSymmetry:
    def test_symmetric_triplet_detected(self):
        classes = symmetry_classes(_majority_like())
        assert classes == ((0, 1, 2),)

    def test_objective_asymmetry_blocks_class(self):
        p = _majority_like()
        p.objective[0] = 2
        assert symmetry_classes(p) == ((1, 2),)

    def test_no_classes_on_asymmetric_model(self):
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([2, 1], ">=", 3)
        assert symmetry_classes(p) == ()

    def test_collapse_and_expand_round_trip(self):
        p = _majority_like()
        collapse = collapse_symmetric(p)
        assert collapse is not None
        assert collapse.problem.num_vars == 1
        reduced = solve_ilp(collapse.problem, backend="exact")
        assert reduced.status is Status.OPTIMAL
        expanded = expand_solution(collapse, reduced.values)
        assert len(expanded) == 3
        assert p.is_feasible_point(expanded)
        # The symmetric optimum here coincides with the true optimum.
        assert p.objective_value(expanded) == 3

    def test_collapse_none_when_no_symmetry(self):
        p = IlpProblem(num_vars=2, objective=[1, 1])
        p.add_constraint([2, 1], ">=", 3)
        assert collapse_symmetric(p) is None
