"""Unit tests for branch & bound integer programming."""

from fractions import Fraction

from repro.ilp.branch_bound import solve_bb
from repro.ilp.model import IlpProblem, Status


def make(num_vars, objective, rows, integer=None):
    p = IlpProblem(num_vars=num_vars, objective=objective, integer=integer or [])
    for coeffs, sense, rhs in rows:
        p.add_constraint(coeffs, sense, rhs)
    return p


class TestIntegrality:
    def test_rounds_up_fractional_relaxation(self):
        # min x s.t. 2x >= 1, x integer => x = 1 (relaxation gives 1/2).
        p = make(1, [1], [([2], ">=", 1)])
        r = solve_bb(p)
        assert r.status is Status.OPTIMAL
        assert r.int_values() == (1,)

    def test_knapsack_style(self):
        # min 3x + 2y s.t. x + y >= 3, 2x + y >= 4: integral optimum.
        p = make(2, [3, 2], [([1, 1], ">=", 3), ([2, 1], ">=", 4)])
        r = solve_bb(p)
        assert r.status is Status.OPTIMAL
        x, y = r.int_values()
        assert x + y >= 3 and 2 * x + y >= 4
        assert r.objective == 3 * x + 2 * y
        # Exhaustive check of optimality over a small box.
        best = min(
            3 * a + 2 * b
            for a in range(6)
            for b in range(6)
            if a + b >= 3 and 2 * a + b >= 4
        )
        assert r.objective == best

    def test_mixed_integer(self):
        # y continuous: min x + y s.t. x + 2y >= 3, x integer.
        p = make(2, [1, 1], [([1, 2], ">=", 3)], integer=[True, False])
        r = solve_bb(p)
        assert r.status is Status.OPTIMAL
        assert r.objective == Fraction(3, 2)  # x=0, y=3/2

    def test_integrality_gap_infeasible(self):
        # 2x == 1 has an LP solution but no integer solution.
        p = make(1, [1], [([2], "==", 1)])
        assert solve_bb(p).status is Status.INFEASIBLE

    def test_infeasible_lp(self):
        p = make(1, [1], [([1], ">=", 2), ([1], "<=", 1)])
        assert solve_bb(p).status is Status.INFEASIBLE

    def test_unbounded(self):
        p = make(1, [-1], [([1], ">=", 0)])
        assert solve_bb(p).status is Status.UNBOUNDED


class TestThresholdShapedProblems:
    def test_paper_worked_example(self):
        # g = x1 y2 + x1 y3 with delta_on=0, delta_off=1 -> <2,1,1;3>.
        p = make(
            4,
            [1, 1, 1, 1],
            [
                ([1, 1, 0, -1], ">=", 0),
                ([1, 0, 1, -1], ">=", 0),
                ([0, 1, 1, -1], "<=", -1),
                ([1, 0, 0, -1], "<=", -1),
            ],
        )
        r = solve_bb(p)
        assert r.int_values() == (2, 1, 1, 3)

    def test_nonthreshold_function_infeasible(self):
        # x1 x2 + x3 x4 is not threshold: its four constraints conflict.
        p = make(
            5,
            [1, 1, 1, 1, 1],
            [
                ([1, 1, 0, 0, -1], ">=", 0),
                ([0, 0, 1, 1, -1], ">=", 0),
                ([1, 0, 1, 0, -1], "<=", -1),
                ([1, 0, 0, 1, -1], "<=", -1),
                ([0, 1, 1, 0, -1], "<=", -1),
                ([0, 1, 0, 1, -1], "<=", -1),
            ],
        )
        assert solve_bb(p).status is Status.INFEASIBLE

    def test_gcd_presolve_kills_divisibility_traps(self):
        # -3x + 3y + 3z - 3w == 7: gcd 3 does not divide 7, so there is no
        # integer solution even though the LP is feasible everywhere.
        # Without the presolve cut, branch & bound grinds to its node limit.
        import time

        p = make(
            4,
            [1, 1, 1, 1],
            [
                ([2, 0, -1, 2], "<=", 7),
                ([-2, 1, -2, 2], "<=", 8),
                ([-3, 3, 3, -3], "==", 7),
            ],
        )
        started = time.time()
        assert solve_bb(p).status is Status.INFEASIBLE
        assert time.time() - started < 1.0

    def test_gcd_presolve_ignores_continuous_vars(self):
        # With y continuous, 2x + 2y == 3 IS solvable (y = 1/2).
        p = make(2, [1, 1], [([2, 2], "==", 3)], integer=[True, False])
        r = solve_bb(p)
        assert r.status is Status.OPTIMAL

    def test_gcd_presolve_keeps_feasible_equalities(self):
        p = make(2, [1, 1], [([2, 4], "==", 6)])
        r = solve_bb(p)
        assert r.status is Status.OPTIMAL
        assert r.int_values() in ((3, 0), (1, 1))

    def test_node_limit_returns_infeasible(self):
        # gcd(2,3)=1 divides 1, so the presolve cut does not fire and the
        # search must actually run; with node_limit=1 it gives up early.
        p = make(2, [1, 1], [([2, 3], "==", 1)])
        r = solve_bb(p, node_limit=1)
        assert r.status is Status.INFEASIBLE

    def test_search_proves_infeasibility_without_gcd_cut(self):
        # Same problem with a real budget: the search itself must prove
        # integer infeasibility (both branches go LP-infeasible).
        p = make(2, [1, 1], [([2, 3], "==", 1)])
        assert solve_bb(p).status is Status.INFEASIBLE
