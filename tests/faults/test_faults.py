"""The chaos harness itself: spec parsing, determinism, retry/backoff."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import ChaosError
from repro.faults.injector import (
    CHAOS_ENV,
    FaultInjector,
    KNOWN_SITES,
    get_injector,
    parse_chaos_spec,
)
from repro.faults.retry import RetryPolicy, retry_call


class TestSpecParsing:
    def test_single_site_with_seed(self):
        spec = parse_chaos_spec("worker=0.5:7")
        assert spec.rates == {"worker": 0.5}
        assert spec.seed == 7
        assert spec.active

    def test_multiple_sites_default_seed(self):
        spec = parse_chaos_spec("solver=1.0,cache=0.25")
        assert spec.rate("solver") == 1.0
        assert spec.rate("cache") == 0.25
        assert spec.rate("worker") == 0.0
        assert spec.seed == 0

    def test_whitespace_tolerated(self):
        spec = parse_chaos_spec(" worker=0.1 , stall=0.2 :3")
        assert spec.rates == {"worker": 0.1, "stall": 0.2}
        assert spec.seed == 3

    def test_zero_rate_spec_is_inactive(self):
        assert not parse_chaos_spec("worker=0.0").active

    @pytest.mark.parametrize(
        "text",
        [
            "worker",  # no rate
            "worker=0.5:xyz",  # bad seed
            "typo-site=0.5",  # unknown site
            "worker=lots",  # non-numeric rate
            "worker=1.5",  # out of range
            "worker=-0.1",  # out of range
            ":4",  # no sites
            "",  # empty
        ],
    )
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ChaosError):
            parse_chaos_spec(text)

    def test_every_known_site_parses(self):
        body = ",".join(f"{site}=0.1" for site in sorted(KNOWN_SITES))
        spec = parse_chaos_spec(body + ":9")
        assert set(spec.rates) == KNOWN_SITES


class TestDecisions:
    def test_same_key_same_decision(self):
        a = FaultInjector(parse_chaos_spec("worker=0.5:1"))
        b = FaultInjector(parse_chaos_spec("worker=0.5:1"))
        keys = [f"cone{i}:1" for i in range(200)]
        assert [a.decide("worker", k) for k in keys] == [
            b.decide("worker", k) for k in keys
        ]

    def test_rate_one_always_fires_rate_zero_never(self):
        inj = FaultInjector(parse_chaos_spec("worker=1.0:0"))
        assert all(inj.decide("worker", f"k{i}") for i in range(20))
        assert not any(inj.decide("solver", f"k{i}") for i in range(20))
        assert inj.injected == {"worker": 20}

    def test_rate_is_statistically_respected(self):
        inj = FaultInjector(parse_chaos_spec("cache=0.3:5"))
        hits = sum(inj.decide("cache", f"key{i}") for i in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_seed_changes_decisions(self):
        a = FaultInjector(parse_chaos_spec("worker=0.5:1"))
        b = FaultInjector(parse_chaos_spec("worker=0.5:2"))
        keys = [f"cone{i}" for i in range(200)]
        assert [a.decide("worker", k) for k in keys] != [
            b.decide("worker", k) for k in keys
        ]

    def test_decisions_survive_pythonhashseed(self):
        """String seeding hashes through SHA-512, not hash(): decisions
        must match across interpreters with different PYTHONHASHSEED."""
        local = FaultInjector(parse_chaos_spec("worker=0.5:42"))
        expect = [local.decide("worker", f"cone{i}:1") for i in range(32)]
        code = (
            "from repro.faults.injector import FaultInjector, parse_chaos_spec;"
            "inj = FaultInjector(parse_chaos_spec('worker=0.5:42'));"
            "print([inj.decide('worker', f'cone{i}:1') for i in range(32)])"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        )
        assert out.stdout.strip() == repr(expect)


class TestGetInjector:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert get_injector() is None

    def test_cached_per_env_value(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "worker=0.5:1")
        first = get_injector()
        assert first is get_injector()  # counters persist
        monkeypatch.setenv(CHAOS_ENV, "worker=0.5:2")
        assert get_injector() is not first  # new spec takes effect
        monkeypatch.delenv(CHAOS_ENV)
        assert get_injector() is None

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "bogus-site=1.0")
        with pytest.raises(ChaosError):
            get_injector()


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        sleeps: list[float] = []
        calls: list[int] = []

        def flaky(attempt: int) -> str:
            calls.append(attempt)
            if attempt < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.01)
        assert retry_call(flaky, policy, sleep=sleeps.append) == "ok"
        assert calls == [1, 2, 3]
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential growth (with jitter >= 0)

    def test_exhaustion_reraises(self):
        def always(attempt: int):
            raise OSError("still broken")

        policy = RetryPolicy(max_attempts=2, base_backoff_s=0.0)
        with pytest.raises(OSError):
            retry_call(always, policy, sleep=lambda _s: None)

    def test_non_retryable_propagates_immediately(self):
        calls: list[int] = []

        def bad(attempt: int):
            calls.append(attempt)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(bad, RetryPolicy(), sleep=lambda _s: None)
        assert calls == [1]

    def test_backoff_is_bounded_and_deterministic(self):
        policy = RetryPolicy(
            max_attempts=10, base_backoff_s=0.05, max_backoff_s=0.5, seed=3
        )
        series = [policy.backoff_s(n, key="taskA") for n in range(1, 10)]
        assert series == [
            policy.backoff_s(n, key="taskA") for n in range(1, 10)
        ]
        assert all(s <= 0.5 for s in series)
        assert series != [
            policy.backoff_s(n, key="taskB") for n in range(1, 10)
        ]

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, max_backoff_s=10.0, jitter=0.0
        )
        assert [policy.backoff_s(n) for n in (1, 2, 3)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
        ]
