#!/usr/bin/env python3
"""The paper's Section III motivational example, reproduced end to end.

Builds the Boolean network of Fig. 2(a) (7 gates, 5 levels including the
inverter), runs TELS, and prints the synthesized threshold network.  The
paper's hand-derived result (Fig. 2(b)) has 5 gates and 3 levels; the
implementation here finds an equivalent network at least that small.

Run:  python examples/motivational_example.py
"""

from repro import (
    SynthesisOptions,
    network_stats,
    parse_blif,
    synthesize,
    verify_threshold_network,
)
from repro.core.area import boolean_stats

FIG_2A = """
.model motivational
.inputs x1 x2 x3 x4 x5 x6 x7
.outputs f
.names x1 inv1
0 1
.names x1 x2 x3 n4
111 1
.names inv1 x4 n5
11 1
.names n4 n5 n3
1- 1
-1 1
.names n3 x5 n1
11 1
.names x6 x7 n2
11 1
.names n1 n2 f
1- 1
-1 1
.end
"""


def main() -> None:
    network = parse_blif(FIG_2A)
    before = boolean_stats(network)
    print(f"Fig. 2(a) Boolean network: {before.gates} gates, "
          f"{before.levels} levels")

    threshold_net = synthesize(network, SynthesisOptions(psi=4))
    assert verify_threshold_network(network, threshold_net)

    after = network_stats(threshold_net)
    print(f"synthesized threshold network: {after.gates} gates, "
          f"{after.levels} levels, area {after.area}")
    print(f"paper's Fig. 2(b): 5 gates, 3 levels\n")

    print("gate table:")
    for name in threshold_net.topological_order():
        gate = threshold_net.gate(name)
        print(f"  {name:8s} <- [{' '.join(gate.inputs)}]  {gate.vector}")

    reduction = 100.0 * (before.gates - after.gates) / before.gates
    print(f"\ngate reduction {reduction:.1f}% "
          f"(paper reports 28.6% for its hand-derived network)")


if __name__ == "__main__":
    main()
