#!/usr/bin/env python3
"""Regenerate Fig. 10: gate count vs fanin restriction for ``comp``.

Sweeps ψ from 3 to 8 for both flows and renders a small ASCII chart.  The
paper's observation: the one-to-one network keeps shrinking as larger gates
are allowed, while TELS barely moves — because the fraction of wide
functions that are threshold collapses (Section VI-B), a fanin restriction
of 3–5 is the sweet spot.

Run:  python examples/fanin_sweep.py [benchmark]
"""

import sys

from repro.experiments.fig10 import run_fig10


def ascii_chart(points) -> str:
    width = 46
    top = max(p.one_to_one_gates for p in points)
    lines = []
    for p in points:
        oto = int(width * p.one_to_one_gates / top)
        tels = int(width * p.tels_gates / top)
        lines.append(f"psi={p.psi}  1-to-1 {'#' * oto} {p.one_to_one_gates}")
        lines.append(f"       TELS   {'=' * tels} {p.tels_gates}")
    return "\n".join(lines)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "comp"
    points = run_fig10(name)
    print(f"Fig. 10 reproduction — {name}\n")
    print(ascii_chart(points))
    swing_oto = points[0].one_to_one_gates - points[-1].one_to_one_gates
    swing_tels = points[0].tels_gates - points[-1].tels_gates
    print(
        f"\nrelaxing psi 3->8 removes {swing_oto} one-to-one gates but only "
        f"{swing_tels} TELS gates:\nwide functions are rarely threshold, so "
        "TELS gains little from bigger gates."
    )


if __name__ == "__main__":
    main()
