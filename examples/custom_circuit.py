#!/usr/bin/env python3
"""Design a circuit with the builder API and ship it as threshold logic.

Shows the full designer loop the library supports beyond the paper's
experiments: build a 6-bit magnitude comparator with
:class:`repro.benchgen.circuits.CircuitBuilder`, synthesize it at two defect
tolerances, check robustness, and export the result in the BLIF-TH
interchange format.

Run:  python examples/custom_circuit.py
"""

import random

from repro import SynthesisOptions, network_stats, prepare_tels, synthesize
from repro.benchgen.circuits import CircuitBuilder
from repro.core.defects import circuit_failure_probability
from repro.core.verify import verify_threshold_network
from repro.io.thblif import to_thblif


def build_comparator():
    cb = CircuitBuilder("cmp6")
    a = cb.inputs("a", 6)
    b = cb.inputs("b", 6)
    gt, lt, eq = cb.ripple_comparator(a, b)
    cb.output(gt, "a_gt_b")
    cb.output(lt, "a_lt_b")
    cb.output(eq, "a_eq_b")
    return cb.done()


def main() -> None:
    network = build_comparator()
    print(f"designed: {network}")

    prepared = prepare_tels(network)
    for delta_on in (0, 2):
        threshold_net = synthesize(
            prepared, SynthesisOptions(psi=4, delta_on=delta_on)
        )
        assert verify_threshold_network(network, threshold_net)
        stats = network_stats(threshold_net)
        fail = circuit_failure_probability(
            network, threshold_net, v=0.8, trials=25, seed=0
        )
        print(
            f"\ndelta_on={delta_on}: {stats}; "
            f"P(failure at v=0.8) = {fail:.2f}"
        )
        if delta_on == 2:
            print("\nBLIF-TH export (first 12 lines):")
            for line in to_thblif(threshold_net).splitlines()[:12]:
                print(f"  {line}")

    # Spot check behaviour on random vectors through the threshold network.
    robust = synthesize(prepared, SynthesisOptions(psi=4, delta_on=2))
    rng = random.Random(7)
    for _ in range(3):
        av, bv = rng.randrange(64), rng.randrange(64)
        assignment = {}
        for i in range(6):
            assignment[f"a{i}"] = (av >> i) & 1
            assignment[f"b{i}"] = (bv >> i) & 1
        out = robust.evaluate(assignment)
        print(
            f"a={av:2d} b={bv:2d} -> gt={int(out['a_gt_b'])} "
            f"lt={int(out['a_lt_b'])} eq={int(out['a_eq_b'])}"
        )


if __name__ == "__main__":
    main()
