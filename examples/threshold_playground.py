#!/usr/bin/env python3
"""Interactive tour of threshold-function identification and the theorems.

Walks through the paper's Section IV/V-B machinery on concrete functions:
which common functions are threshold, what their minimal-area vectors look
like, how Theorem 1 certifies non-thresholdness, and how Theorem 2 extends
gates.  A good first read before diving into the synthesis flow.

Run:  python examples/threshold_playground.py
"""

from repro import BooleanFunction, is_threshold_function
from repro.core.theorems import replace_literal, theorem2_extend

CANDIDATES = [
    ("AND3", "a b c"),
    ("OR3", "a + b + c"),
    ("majority", "a b + a c + b c"),
    ("2-of-4 (threshold-2)", "a b + a c + a d + b c + b d + c d"),
    ("mux-ish a b + a' c", "a b + a' c"),
    ("paper V-B example", "x1 x2' + x1 x3'"),
    ("a + b c", "a + b c"),
    ("XOR", "a b' + a' b"),
    ("x1x2 + x3x4", "x1 x2 + x3 x4"),
    ("dominant input", "a b + a c + a d"),
]


def main() -> None:
    print("Which functions are threshold functions?\n")
    print(f"{'function':26s} {'threshold?':11s} vector (weights; T)")
    print("-" * 62)
    for label, expression in CANDIDATES:
        f = BooleanFunction.parse(expression)
        vector = is_threshold_function(f)
        verdict = "yes" if vector else "NO"
        print(f"{label:26s} {verdict:11s} {vector if vector else '-'}")

    print("\nTheorem 1 in action:")
    f = BooleanFunction.parse("x1 x2 + x3 x4")
    g = replace_literal(f, "x3", "x1")
    print(f"  f = {f.to_expression()}")
    print(f"  replace x3 by x1': g = {g.to_expression()}")
    print(
        "  g is binate in x1, hence not threshold -> Theorem 1 certifies f "
        "is not threshold\n  (no ILP call needed)."
    )

    print("\nTheorem 2 in action:")
    base = is_threshold_function(BooleanFunction.parse("x1 x2"))
    print(f"  x1 x2 has vector {base}")
    extended = theorem2_extend(base, 1)
    print(f"  x1 x2 + y  gets   {extended}  (new weight = T_pos + delta_on)")
    neg = is_threshold_function(BooleanFunction.parse("x1 x2'"))
    print(f"  x1 x2' has vector {neg}")
    print(f"  x1 x2' + y gets   {theorem2_extend(neg, 1)}")

    print("\nDefect tolerances change the vectors (and the area):")
    for delta_on in (0, 1, 3):
        vector = is_threshold_function(
            BooleanFunction.parse("a b + a c"), delta_on=delta_on
        )
        print(f"  delta_on={delta_on}:  {vector}   area={vector.area}")


if __name__ == "__main__":
    main()
