#!/usr/bin/env python3
"""Regenerate Table I of the paper (gates / levels / area at ψ = 3).

Runs both flows — one-to-one mapping and TELS — over the benchmark
stand-ins, verifies every synthesized network by simulation, and prints the
measured table next to the paper's reduction percentages.

Run:  python examples/reproduce_table1.py [--full]
      (--full includes the large i10 benchmark; adds ~half a minute)
"""

import argparse
import time

from repro.benchgen.mcnc import benchmark_names
from repro.experiments.table1 import format_table1, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="include the large i10 benchmark"
    )
    parser.add_argument("--psi", type=int, default=3, help="fanin restriction")
    args = parser.parse_args()

    names = benchmark_names(include_large=args.full)
    started = time.time()
    rows = run_table1(names, psi=args.psi)
    elapsed = time.time() - started

    print(f"Table I reproduction (psi={args.psi}; every network verified "
          f"by simulation; {elapsed:.1f}s)\n")
    print(format_table1(rows))
    print(
        "\nNote: absolute gate counts differ from the paper because the "
        "benchmark\nnetlists are functionally-matched stand-ins (see "
        "DESIGN.md §4); the shape —\nTELS well below one-to-one everywhere "
        "except the wiring-dominated tcon —\nis the reproduction target."
    )


if __name__ == "__main__":
    main()
