#!/usr/bin/env python3
"""Quickstart: synthesize a threshold network from a small BLIF circuit.

Covers the core public API in ~40 lines: parse BLIF, prepare the network,
run TELS, inspect the weight-threshold vectors, verify functional
equivalence, and compare against the one-to-one mapping baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    SynthesisOptions,
    network_stats,
    one_to_one_map,
    parse_blif,
    prepare_one_to_one,
    prepare_tels,
    synthesize,
    verify_threshold_network,
)

# A full adder described in BLIF (sum + carry from a, b, cin).
FULL_ADDER = """
.model full_adder
.inputs a b cin
.outputs sum cout
.names a b p
10 1
01 1
.names p cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
"""


def main() -> None:
    network = parse_blif(FULL_ADDER)
    print(f"source: {network}")

    # TELS flow: algebraic preparation, then recursive threshold synthesis.
    threshold_net = synthesize(prepare_tels(network), SynthesisOptions(psi=3))
    assert verify_threshold_network(network, threshold_net)
    print(f"\nTELS result ({network_stats(threshold_net)}):")
    for name in threshold_net.topological_order():
        gate = threshold_net.gate(name)
        print(f"  {name:10s} <- {', '.join(gate.inputs):24s} {gate.vector}")

    # Baseline: optimize, decompose to simple gates, map one gate -> one LTG.
    baseline = one_to_one_map(prepare_one_to_one(network, max_fanin=3))
    assert verify_threshold_network(network, baseline)
    print(f"\none-to-one baseline: {network_stats(baseline)}")

    tels = network_stats(threshold_net)
    oto = network_stats(baseline)
    saved = 100.0 * (oto.gates - tels.gates) / oto.gates
    print(f"\nTELS saves {saved:.1f}% of the gates on this circuit.")
    print("note: cout = majority(a, b, cin) is a single threshold gate "
          "<1,1,1;2> - something no single AND/OR gate can do.")


if __name__ == "__main__":
    main()
