#!/usr/bin/env python3
"""Regenerate Figs. 11 and 12: robustness under weight variation.

Disturbs every synthesized weight by ``w' = w + v*U(-0.5, 0.5)`` and
measures the suite failure rate for defect tolerances δ_on = 0..3
(δ_off = 1).  Shows both paper claims: failure falls as δ_on grows
(Fig. 11) and the robustness is paid for in RTD area (Fig. 12).

Run:  python examples/defect_tolerance.py
"""

from repro.experiments.fig11 import format_fig11, run_fig11
from repro.experiments.fig12 import format_fig12, run_fig12

FAST_SUITE = ["cm152a", "cm85a", "cmb", "pm1", "tcon", "term1"]


def main() -> None:
    print("Fig. 11 reproduction (failure rate = % of benchmarks with any")
    print("wrong output vector under disturbed weights)\n")
    points11 = run_fig11(
        names=FAST_SUITE,
        delta_ons=(0, 1, 2, 3),
        multipliers=(0.2, 0.6, 1.0, 1.4, 1.8),
        trials=3,
        vectors=256,
    )
    print(format_fig11(points11))

    print("\n")
    points12 = run_fig12(
        names=FAST_SUITE, delta_ons=(0, 1, 2, 3), v=0.8, trials=3, vectors=256
    )
    print(format_fig12(points12))
    print(
        "\nTradeoff: each extra unit of delta_on forces the ILP to separate "
        "ON and OFF\nweighted sums further, which costs weights (area, "
        "Eq. 14) but keeps gates\ncorrect under larger weight variations."
    )


if __name__ == "__main__":
    main()
